"""Bundled campaign specs, referenced by name on the CLI.

``python -m repro.experiments campaign fig4-recovery`` resolves here; the
same grids exist as editable TOML under ``examples/campaigns/`` for users
building their own sweeps.
"""

from __future__ import annotations

from typing import Dict

#: The paper's Fig. 4 vs Fig. 7 contrast as a campaign: PF and PCF under
#: one permanent link failure (handled at round 75 resp. 175) on the 6-D
#: hypercube, three seeds each. The summary's recovery-rounds column shows
#: PF re-paying (nearly) its whole convergence cost while PCF continues
#: almost unperturbed.
FIG4_RECOVERY: Dict[str, object] = {
    "name": "fig4-recovery",
    "algorithms": ["push_flow", "push_cancel_flow"],
    "topologies": [{"family": "hypercube", "n": 64}],
    "faults": [
        {"kind": "link_failure", "round": 75},
        {"kind": "link_failure", "round": 175},
    ],
    "seeds": [0, 1, 2],
    "rounds": 200,
    "epsilon": 1e-9,
}

#: Tiny end-to-end slice for CI: 2 algorithms x 1 topology x 1 fault x
#: 2 seeds at n=16 — a few seconds, exercising the whole pipeline.
SMOKE: Dict[str, object] = {
    "name": "smoke",
    "algorithms": ["push_flow", "push_cancel_flow"],
    "topologies": [{"family": "hypercube", "n": 16}],
    "faults": [{"kind": "link_failure", "round": 40}],
    "seeds": [0, 1],
    "rounds": 120,
    "epsilon": 1e-6,
}

#: Message-loss grid in the spirit of Gerencser & Hendrickx: behavior under
#: loss depends sharply on the rate, and push-sum (no flow bookkeeping)
#: converges to the wrong value while PF/PCF self-heal.
LOSS_GRID: Dict[str, object] = {
    "name": "loss-grid",
    "algorithms": ["push_sum", "push_flow", "push_cancel_flow"],
    "topologies": [{"family": "hypercube", "n": 64}],
    "faults": [
        {"kind": "none"},
        {"kind": "message_loss", "rate": 0.05},
        {"kind": "message_loss", "rate": 0.2},
    ],
    "seeds": [0, 1],
    "rounds": 300,
    "epsilon": 1e-9,
}

#: The smoke grid on the batched whole-array engine: same cells, one
#: NumPy program per (algorithm, topology) group. CI runs both and the
#: report tool checks the records line up schema-wise.
SMOKE_BATCHED: Dict[str, object] = {
    **SMOKE,
    "name": "smoke-batched",
    "engine": "batched",
}

#: Dynamic-network grid: membership churn, partition-and-heal and a
#: correlated regional outage against the fault-free baseline. The summary
#: shows the robustness gradient under churn — push-sum converges to the
#: wrong value (departed mass is gone), PCF carries a small residual offset
#: (orphaned cancelled-flow mass), PF reconverges exactly — while the
#: edge-only partition reconverges for every algorithm after the heal.
CHURN_GRID: Dict[str, object] = {
    "name": "churn-grid",
    "algorithms": ["push_sum", "push_flow", "push_cancel_flow"],
    "topologies": [{"family": "hypercube", "n": 32}],
    "faults": [
        {"kind": "none"},
        {"kind": "churn", "rate": 0.05, "start": 20, "end": 100},
        {"kind": "partition", "round": 40, "heal_round": 80},
        {"kind": "regional_outage", "round": 40, "duration": 30},
    ],
    "seeds": [0, 1],
    "rounds": 160,
    "epsilon": 1e-6,
}

BUILTIN_SPECS: Dict[str, Dict[str, object]] = {
    "fig4-recovery": FIG4_RECOVERY,
    "smoke": SMOKE,
    "smoke-batched": SMOKE_BATCHED,
    "loss-grid": LOSS_GRID,
    "churn-grid": CHURN_GRID,
}
