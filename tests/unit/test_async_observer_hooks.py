"""Observer-hook ordering and emission on the asynchronous engine.

The synchronous engine's hook contract is pinned in
``test_observer_hooks.py``; this module pins the asynchronous engine's
version of it — the one the tracing layer builds on — under message
drops and link failures:

- run/round boundaries bracket everything, with round indices complete
  and increasing even though activations are Poisson events;
- a link failure's ``on_fault_injected`` precedes its ``on_link_handled``,
  which precedes the handle-round's ``on_round_end``;
- drops are always reported individually (they are semantically
  load-bearing), even for observers that never request detail;
- sent totals stay exact under sampling: per-message hooks on sampled
  rounds plus the batched ``on_round_messages`` elsewhere sum to the
  engine counter.
"""

from collections import Counter

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.algorithms.registry import instantiate
from repro.faults.events import FaultPlan, LinkFailure
from repro.simulation.async_engine import AsynchronousEngine
from repro.simulation.observers import Observer
from repro.telemetry.sampling import RoundSampler
from repro.topology import ring
from tests.unit.test_observer_hooks import DropFirstMessage, SequenceRecorder


def build_async(algorithm, n=4, **kwargs):
    topo = ring(n)
    initial = initial_mass_pairs(AggregateKind.AVERAGE, [1.0] * n)
    algs = instantiate(algorithm, topo, initial)
    return AsynchronousEngine(topo, algs, **kwargs)


def link_failure_plan(*, round, u=0, v=1, detection_delay=1):
    return FaultPlan(
        link_failures=[
            LinkFailure(round=round, u=u, v=v, detection_delay=detection_delay)
        ]
    )


class TestRunAndRoundBoundaries:
    def test_run_boundaries_bracket_all_events(self):
        events = []
        engine = build_async(
            "push_flow", seed=3, observers=[SequenceRecorder(events)]
        )
        engine.run(6.0)
        assert events[0] == "run_start"
        assert events[-1] == ("run_end", 6)

    def test_round_indices_complete_and_increasing(self):
        events = []
        engine = build_async(
            "push_flow", seed=3, observers=[SequenceRecorder(events)]
        )
        engine.run(6.0)
        rounds = [e[1] for e in events if isinstance(e, tuple) and e[0] == "round_end"]
        assert rounds == [0, 1, 2, 3, 4, 5]


class TestLinkFailureOrdering:
    def test_fault_then_handling_then_round_end(self):
        events = []
        engine = build_async(
            "push_flow",
            seed=3,
            fault_plan=link_failure_plan(round=2),
            observers=[SequenceRecorder(events)],
        )
        engine.run(6.0)
        fault = events.index(("fault", 2, "link_failure", "link(0,1)"))
        handled = events.index(("link_handled", 2, 0, 1))
        handle_round_end = events.index(("round_end", 2))
        assert fault < handled < handle_round_end

    def test_handling_excludes_the_link_from_both_endpoints(self):
        engine = build_async(
            "push_flow", seed=3, fault_plan=link_failure_plan(round=2)
        )
        engine.run(6.0)
        algs = engine.algorithms
        assert 1 not in algs[0].neighbors
        assert 0 not in algs[1].neighbors


class TestDrops:
    def test_injector_drop_reported_once(self):
        events = []
        engine = build_async(
            "push_flow",
            seed=3,
            message_fault=DropFirstMessage(),
            observers=[SequenceRecorder(events)],
        )
        engine.run(5.0)
        drops = [e for e in events if isinstance(e, tuple) and e[0] == "dropped"]
        assert len(drops) == 1
        assert drops[0][3] == "injector"
        assert engine.messages_delivered == engine.messages_sent - 1

    def test_dead_edge_drops_reported_even_without_detail(self):
        # A long detection delay keeps the physically dead link in every
        # node's neighbor set, so sends into it keep happening — and every
        # one must surface as a drop, even though the observer never asks
        # for per-message detail.
        class DropsOnly(Observer):
            def __init__(self):
                self.drops = []

            def wants_detail(self, round_index):
                return False

            def on_message_dropped(self, engine, message, reason):
                self.drops.append((message.sender, message.receiver, reason))

        recorder = DropsOnly()
        engine = build_async(
            "push_flow",
            n=6,
            seed=5,
            fault_plan=link_failure_plan(round=1, detection_delay=30),
            observers=[recorder],
        )
        engine.run(10.0)
        reasons = Counter(reason for _, _, reason in recorder.drops)
        assert set(reasons) == {"dead_edge"}
        assert reasons["dead_edge"] > 0
        # Both directions of the dead edge are affected.
        edges = {(u, v) for u, v, _ in recorder.drops}
        assert edges == {(0, 1), (1, 0)}
        assert (
            engine.messages_delivered
            == engine.messages_sent - len(recorder.drops)
        )


class _SampledCounter(Observer):
    def __init__(self, sampler):
        self._sampler = sampler
        self.detail_sent = 0
        self.detail_delivered = 0
        self.batched_sent = 0
        self.batched_delivered = 0
        self.detail_rounds = set()
        self.batched_rounds = []

    def wants_detail(self, round_index):
        return self._sampler.sample(round_index)

    def on_message_sent(self, engine, message):
        self.detail_sent += 1
        self.detail_rounds.add(message.round)

    def on_message_delivered(self, engine, message):
        self.detail_delivered += 1

    def on_round_messages(self, engine, round_index, sent, delivered):
        assert not self._sampler.sample(round_index)
        self.batched_sent += sent
        self.batched_delivered += delivered
        self.batched_rounds.append(round_index)


class TestSampledTotals:
    def test_sent_and_delivered_exact_at_zero_latency(self):
        counter = _SampledCounter(RoundSampler(every=4))
        engine = build_async("push_flow", n=6, seed=5, observers=[counter])
        engine.run(12.0)
        assert (
            counter.detail_sent + counter.batched_sent == engine.messages_sent
        )
        assert (
            counter.detail_delivered + counter.batched_delivered
            == engine.messages_delivered
        )
        # Detail hooks fired only on sampled rounds; the batched hook
        # covered exactly the unsampled ones.
        assert counter.detail_rounds == {0, 4, 8}
        assert counter.batched_rounds == [1, 2, 3, 5, 6, 7, 9, 10, 11]
        assert counter.batched_sent > 0

    def test_sent_totals_exact_under_latency(self):
        # With in-flight latency the delivered==sent convention of the
        # batched hook is approximate, but *sent* accounting stays exact.
        counter = _SampledCounter(RoundSampler(every=4))
        engine = build_async(
            "push_flow", n=6, seed=5, latency=0.8, observers=[counter]
        )
        engine.run(12.0)
        assert (
            counter.detail_sent + counter.batched_sent == engine.messages_sent
        )
