"""Unit tests for the metrics package."""

import math

import pytest

from repro.metrics.convergence import (
    convergence_round,
    fallback_report,
    rounds_to_accuracy,
)
from repro.metrics.errors import (
    error_floor,
    local_errors,
    max_local_error,
    median_local_error,
)


class TestErrorMetrics:
    def test_local_errors(self):
        errors = local_errors([2.0, 2.2], 2.0)
        assert errors[0] == 0.0
        assert errors[1] == pytest.approx(0.1)

    def test_max_local_error(self):
        assert max_local_error([2.0, 2.2, 1.9], 2.0) == pytest.approx(0.1)

    def test_max_with_nonfinite(self):
        assert max_local_error([2.0, float("nan")], 2.0) == math.inf

    def test_median_local_error(self):
        assert median_local_error([2.0, 2.2, 1.8], 2.0) == pytest.approx(0.1)

    def test_median_with_nonfinite_ranks_high(self):
        errors = median_local_error(
            [2.0, 2.0, float("inf"), float("inf"), float("inf")], 2.0
        )
        assert errors == math.inf

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            max_local_error([], 1.0)
        with pytest.raises(ValueError):
            median_local_error([], 1.0)

    def test_error_floor(self):
        assert error_floor(0.0) == 1e-17
        assert error_floor(1e-5) == 1e-5


class TestConvergenceRound:
    def test_sustained(self):
        errors = [1.0, 0.1, 0.001, 0.1, 0.0001, 0.0001]
        assert convergence_round(errors, 0.01) == 4

    def test_first_touch(self):
        errors = [1.0, 0.1, 0.001, 0.1, 0.0001]
        assert convergence_round(errors, 0.01, sustained=False) == 2

    def test_never(self):
        assert convergence_round([1.0, 0.5], 0.01) is None

    def test_last_round_still_bad(self):
        assert convergence_round([0.001, 1.0], 0.01) is None

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            convergence_round([1.0], 0.0)

    def test_rounds_to_accuracy(self):
        errors = [1.0, 0.1, 0.01]
        table = rounds_to_accuracy(errors, [0.5, 0.05, 0.001])
        assert table[0.5] == 1
        assert table[0.05] == 2
        assert table[0.001] is None


class TestFallbackReport:
    def test_pf_like_restart(self):
        errors = [1.0, 0.1, 0.01, 0.001, 0.9, 0.5, 0.1, 0.01, 0.001]
        report = fallback_report(errors, 4)
        assert report.error_before == 0.001
        assert report.error_after == 0.9
        assert report.jump_factor == pytest.approx(900.0)
        assert report.restart_fraction > 0.9
        assert report.recovery_rounds == 4  # back to <= 0.001 at index 8

    def test_pcf_like_no_fallback(self):
        errors = [1.0, 0.1, 0.01, 0.001, 0.001, 0.0001]
        report = fallback_report(errors, 4)
        assert report.jump_factor == pytest.approx(1.0)
        assert report.restart_fraction == 0.0
        assert report.recovery_rounds == 0

    def test_no_recovery(self):
        errors = [1.0, 0.001, 0.9, 0.9]
        report = fallback_report(errors, 2)
        assert report.recovery_rounds is None

    def test_event_at_round_zero(self):
        report = fallback_report([0.5, 0.4], 0)
        assert report.error_before == 0.5

    def test_out_of_range_event(self):
        with pytest.raises(ValueError):
            fallback_report([0.5], 3)

    def test_jump_factor_from_zero(self):
        report = fallback_report([0.1, 0.0, 0.5], 2)
        assert report.jump_factor == math.inf

    def test_restart_fraction_caps_at_one(self):
        errors = [0.01, 0.001, 5.0]  # jumps above the initial error
        report = fallback_report(errors, 2)
        assert report.restart_fraction == 1.0
