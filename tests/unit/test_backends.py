"""Unit tests for the kernel-backend seam (``repro.vectorized.backends``).

Covers backend resolution (defaults, unknown names, the numba-absent
fallback warning), the engine-level ``backend`` axis, and — most
importantly — bit-for-bit parity between the numpy reference kernels and
the numba loop kernels run in plain-Python mode (``jit=False``), which
exercises the exact code numba compiles without requiring numba.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.topology import hypercube
from repro.vectorized import backends as backends_mod
from repro.vectorized.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    NUMBA_AVAILABLE,
    KernelBackend,
    NumbaKernels,
    NumpyKernels,
    available_backends,
    resolve_backend,
)
from repro.vectorized.batched import BatchedEngine, BatchedRun
from repro.vectorized.engines import VectorPushSum
from repro.vectorized.parity import vector_engine_for

ALGORITHMS = (
    "push_sum",
    "push_flow",
    "push_cancel_flow",
    "push_cancel_flow_hardened",
)


class TestResolveBackend:
    def test_default_is_numpy(self):
        kernels = resolve_backend(None)
        assert isinstance(kernels, NumpyKernels)
        assert kernels.name == "numpy"
        assert kernels.compiled is False
        assert DEFAULT_BACKEND == "numpy"

    def test_instance_passthrough(self):
        kernels = NumpyKernels()
        assert resolve_backend(kernels) is kernels

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend 'cuda'"):
            resolve_backend("cuda")
        with pytest.raises(ConfigurationError, match="numpy"):
            resolve_backend("NUMPY")  # names are case-sensitive

    def test_numba_absent_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setattr(backends_mod, "NUMBA_AVAILABLE", False)
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            kernels = resolve_backend("numba")
        assert isinstance(kernels, NumpyKernels)
        assert kernels.name == "numpy"

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_numba_present_resolves_jitted(self):
        kernels = resolve_backend("numba")
        assert isinstance(kernels, NumbaKernels)
        assert kernels.compiled is True

    def test_available_backends_consistent(self):
        avail = available_backends()
        assert "numpy" in avail
        assert set(avail) <= set(BACKEND_NAMES)
        assert ("numba" in avail) == NUMBA_AVAILABLE


class TestNumbaKernelsConstruction:
    def test_python_mode_always_available(self):
        kernels = NumbaKernels(jit=False)
        assert isinstance(kernels, KernelBackend)
        assert kernels.name == "numba"
        assert kernels.compiled is False

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_jit_without_numba_raises(self):
        with pytest.raises(RuntimeError, match=r"\.\[numba\]"):
            NumbaKernels(jit=True)

    def test_default_jit_tracks_availability(self):
        kernels = NumbaKernels()
        assert kernels.compiled is NUMBA_AVAILABLE


class TestEngineBackendAxis:
    def test_backend_properties(self):
        engine = VectorPushSum(hypercube(3), np.ones(8), np.ones(8))
        assert engine.backend_name == "numpy"
        assert isinstance(engine.backend, NumpyKernels)

    def test_engine_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            VectorPushSum(
                hypercube(3), np.ones(8), np.ones(8), backend="fortran"
            )

    def test_engine_accepts_backend_instance(self):
        kernels = NumbaKernels(jit=False)
        engine = VectorPushSum(
            hypercube(3), np.ones(8), np.ones(8), backend=kernels
        )
        assert engine.backend is kernels
        assert engine.backend_name == "numba"

    def test_batched_engine_backend_name(self):
        engine = BatchedEngine(
            "push_sum",
            [
                BatchedRun(
                    topology=hypercube(3),
                    values=np.ones(8),
                    weights=np.ones(8),
                    rng=1,
                )
            ],
        )
        assert engine.backend_name == "numpy"


def _run_engine(algorithm, backend, rounds=60):
    topo = hypercube(4)
    rng = np.random.default_rng(123)
    values = rng.normal(size=(topo.n, 3))
    weights = np.ones(topo.n)
    cls = vector_engine_for(algorithm)
    engine = cls(
        topo,
        values,
        weights,
        loss_probability=0.15,
        seed=7,
        backend=backend,
    )
    engine.run(rounds)
    return engine


class TestKernelParity:
    """numpy kernels vs numba loop kernels (python mode), bit-for-bit."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_estimates_bit_for_bit(self, algorithm):
        ref = _run_engine(algorithm, NumpyKernels())
        alt = _run_engine(algorithm, NumbaKernels(jit=False))
        a, b = ref.estimates(), alt.estimates()
        assert a.tobytes() == b.tobytes()  # incl. signed zeros / NaN bits
        assert ref.messages_sent == alt.messages_sent
        assert ref.messages_delivered == alt.messages_delivered

    def test_pcf_handshake_counters_match(self):
        ref = _run_engine("push_cancel_flow", NumpyKernels())
        alt = _run_engine("push_cancel_flow", NumbaKernels(jit=False))
        assert (ref.cancellations, ref.swaps) == (alt.cancellations, alt.swaps)
        assert ref.cancellations > 0  # the run actually exercised handshakes

    def test_hardened_counters_match(self):
        ref = _run_engine("push_cancel_flow_hardened", NumpyKernels())
        alt = _run_engine("push_cancel_flow_hardened", NumbaKernels(jit=False))
        assert (ref.cancellations, ref.catch_ups) == (
            alt.cancellations,
            alt.catch_ups,
        )

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_jitted_close_to_numpy(self, algorithm):
        # Jitted kernels may contract FMAs, so the acceptance bar is
        # close-tolerance, not bit-for-bit (see DESIGN.md).
        ref = _run_engine(algorithm, NumpyKernels())
        jit = _run_engine(algorithm, NumbaKernels(jit=True))
        np.testing.assert_allclose(
            ref.estimates(), jit.estimates(), rtol=1e-12, atol=1e-12
        )


class TestFallbackEndToEnd:
    def test_engine_numba_spec_runs_without_numba(self, monkeypatch):
        """A spec saying backend='numba' must run on a numba-less box."""
        monkeypatch.setattr(backends_mod, "NUMBA_AVAILABLE", False)
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            engine = VectorPushSum(
                hypercube(3), np.ones(8), np.ones(8), backend="numba"
            )
        assert engine.backend_name == "numpy"
        engine.run(5)
        assert engine.round == 5
