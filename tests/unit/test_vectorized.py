"""Unit tests for the vectorized engines and topology arrays."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.topology import hypercube, ring, star
from repro.vectorized.engines import (
    VectorPushCancelFlow,
    VectorPushFlow,
    VectorPushSum,
)
from repro.vectorized.parity import vector_engine_for
from repro.vectorized.topology_arrays import TopologyArrays


class TestTopologyArrays:
    def test_shapes_and_padding(self):
        topo = star(5)
        arrays = TopologyArrays.from_topology(topo)
        assert arrays.n == 5
        assert arrays.max_degree == 4
        assert arrays.degree[0] == 4
        assert arrays.degree[1] == 1
        # Leaf nodes have padded slots.
        assert arrays.nbr[1, 0] == 0
        assert (arrays.nbr[1, 1:] == -1).all()

    def test_slot_of_inverse(self):
        topo = hypercube(3)
        arrays = TopologyArrays.from_topology(topo)
        for i in topo.nodes():
            for s in range(arrays.degree[i]):
                j = arrays.nbr[i, s]
                t = arrays.slot_of[i, s]
                assert arrays.nbr[j, t] == i

    def test_arrays_read_only(self):
        arrays = TopologyArrays.from_topology(ring(4))
        with pytest.raises(ValueError):
            arrays.nbr[0, 0] = 9


class TestEngineBasics:
    def test_scalar_and_vector_values(self):
        topo = ring(4)
        engine = VectorPushSum(topo, np.arange(4.0), np.ones(4))
        assert engine.dimension == 1
        engine2 = VectorPushSum(topo, np.arange(8.0).reshape(4, 2), np.ones(4))
        assert engine2.dimension == 2

    def test_bad_shapes(self):
        topo = ring(4)
        with pytest.raises(ConfigurationError):
            VectorPushSum(topo, np.arange(3.0), np.ones(4))
        with pytest.raises(ConfigurationError):
            VectorPushSum(topo, np.arange(4.0), np.ones(4), loss_probability=2.0)

    def test_negative_rounds(self):
        engine = VectorPushSum(ring(4), np.ones(4), np.ones(4))
        with pytest.raises(ConfigurationError):
            engine.run(-1)

    def test_message_counters(self):
        engine = VectorPushSum(ring(4), np.ones(4), np.ones(4), seed=0)
        engine.run(5)
        assert engine.messages_sent == 20
        assert engine.messages_delivered == 20

    def test_loss_reduces_deliveries(self):
        engine = VectorPushFlow(
            ring(4), np.ones(4), np.ones(4), seed=0, loss_probability=0.5
        )
        engine.run(50)
        assert engine.messages_delivered < engine.messages_sent

    def test_scripted_schedule_validation(self):
        topo = ring(4)
        with pytest.raises(ConfigurationError):
            VectorPushSum(topo, np.ones(4), np.ones(4), targets=np.zeros((2, 3)))

    def test_scripted_schedule_exhaustion(self):
        topo = ring(4)
        targets = np.array([[1, 2, 3, 0]])
        engine = VectorPushSum(topo, np.ones(4), np.ones(4), targets=targets)
        engine.step()
        with pytest.raises(ConfigurationError):
            engine.step()

    def test_scripted_non_neighbor_rejected(self):
        topo = ring(4)
        targets = np.array([[2, 2, 3, 0]])  # 2 is not a neighbor of 0
        engine = VectorPushSum(topo, np.ones(4), np.ones(4), targets=targets)
        with pytest.raises(ConfigurationError):
            engine.step()

    def test_stop_condition(self):
        engine = VectorPushSum(ring(4), np.ones(4), np.ones(4), seed=0)
        executed = engine.run(100, stop_when=lambda eng, r: r >= 9)
        assert executed == 10

    def test_vector_engine_for(self):
        assert vector_engine_for("push_sum") is VectorPushSum
        assert vector_engine_for("push_flow") is VectorPushFlow
        assert vector_engine_for("push_cancel_flow") is VectorPushCancelFlow
        with pytest.raises(ConfigurationError):
            vector_engine_for("push_flow_incremental")


class TestConvergenceVectorized:
    @pytest.mark.parametrize(
        "cls", [VectorPushSum, VectorPushFlow, VectorPushCancelFlow]
    )
    def test_average_convergence(self, cls):
        topo = hypercube(5)
        rng = np.random.default_rng(0)
        data = rng.uniform(size=topo.n)
        engine = cls(topo, data, np.ones(topo.n), seed=1)
        engine.run(400)
        truth = float(np.mean(data))
        est = engine.estimates()[:, 0]
        assert np.max(np.abs(est - truth) / abs(truth)) < 1e-10

    def test_vector_payload_convergence(self):
        topo = hypercube(4)
        rng = np.random.default_rng(1)
        data = rng.uniform(size=(topo.n, 3))
        engine = VectorPushCancelFlow(topo, data, np.ones(topo.n), seed=2)
        engine.run(300)
        truth = data.mean(axis=0)
        est = engine.estimates()
        assert np.max(np.abs(est - truth[None, :])) < 1e-12

    def test_flow_magnitudes_pf_vs_pcf(self):
        # On the bus workload PF flows grow with n, PCF's stay small.
        from repro.experiments.workloads import bus_case_study_data
        from repro.topology import bus

        n = 32
        topo = bus(n)
        data = bus_case_study_data(n)
        pf = VectorPushFlow(topo, data, np.ones(n), seed=0)
        pcf = VectorPushCancelFlow(topo, data, np.ones(n), seed=0)
        pf.run(20000)
        pcf.run(20000)
        assert pf.max_flow_magnitude() > n / 2
        assert pcf.max_flow_magnitude() < n / 2

    def test_pcf_cancellation_counters(self):
        topo = hypercube(4)
        engine = VectorPushCancelFlow(
            topo, np.ones(topo.n), np.ones(topo.n), seed=0
        )
        engine.run(50)
        assert engine.cancellations > 0
        assert engine.swaps > 0
