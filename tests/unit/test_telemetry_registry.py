"""Unit tests for the telemetry metrics registry and its exporters."""

import json
import math

import pytest

from repro.exceptions import ConfigurationError
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_are_independent(self):
        c = Counter("c")
        c.inc(engine="sync")
        c.inc(3, engine="vector")
        assert c.value(engine="sync") == 1.0
        assert c.value(engine="vector") == 3.0
        assert c.value(engine="async") == 0.0

    def test_label_order_is_irrelevant(self):
        c = Counter("c")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1.0

    def test_negative_inc_rejected(self):
        c = Counter("c")
        with pytest.raises(ConfigurationError):
            c.inc(-1.0)

    def test_samples_sorted(self):
        c = Counter("c")
        c.inc(k="b")
        c.inc(k="a")
        assert [labels for labels, _ in c.samples()] == [{"k": "a"}, {"k": "b"}]


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("g")
        g.set(1.0)
        g.set(7.0)
        assert g.value() == 7.0

    def test_unset_is_nan(self):
        assert math.isnan(Gauge("g").value())


class TestHistogram:
    def test_snapshot_cumulative_buckets(self):
        h = Histogram("h", buckets=[1.0, 10.0])
        for v in (0.5, 0.6, 5.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.1)
        assert snap["max"] == 100.0
        assert snap["buckets"] == [(1.0, 2), (10.0, 3), ("+Inf", 4)]

    def test_boundary_value_falls_in_lower_bucket(self):
        h = Histogram("h", buckets=[1.0, 10.0])
        h.observe(1.0)
        assert h.snapshot()["buckets"][0] == (1.0, 1)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=[])

    def test_empty_snapshot_max_is_zero(self):
        assert Histogram("h", buckets=[1.0]).snapshot()["max"] == 0.0


class TestRegistry:
    def test_same_name_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_metrics_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert [m.name for m in reg.metrics()] == ["a", "b"]

    def test_disabled_registry_is_inert(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x")
        c.inc(5)
        reg.gauge("y").set(1.0)
        reg.histogram("z").observe(0.1)
        assert reg.metrics() == []
        assert reg.to_jsonl() == ""
        assert reg.to_prometheus() == ""

    def test_null_registry_shared_instance(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.histogram("b")


class TestExporters:
    @pytest.fixture
    def registry(self):
        reg = MetricsRegistry()
        reg.counter("repro_sent", "messages sent").inc(10, engine="sync")
        reg.gauge("repro_drift").set(float("inf"))
        h = reg.histogram("repro_phase", buckets=[0.1, 1.0])
        h.observe(0.05, phase="send")
        h.observe(0.5, phase="send")
        return reg

    def test_jsonl_valid_and_sanitized(self, registry):
        lines = [json.loads(l) for l in registry.to_jsonl().splitlines()]
        by_name = {rec["name"]: rec for rec in lines}
        assert by_name["repro_sent"]["value"] == 10.0
        assert by_name["repro_sent"]["labels"] == {"engine": "sync"}
        # inf is not valid JSON — exporter maps it to null
        assert by_name["repro_drift"]["value"] is None
        assert by_name["repro_phase"]["count"] == 2
        assert by_name["repro_phase"]["buckets"] == [["0.1", 1], ["1.0", 2], ["+Inf", 2]]

    def test_csv_shape(self, registry):
        rows = registry.to_csv().splitlines()
        assert rows[0] == "name,type,labels,value,count,sum,max"
        assert any(r.startswith("repro_sent,counter,engine=sync,10.0") for r in rows)
        assert any(r.startswith("repro_phase,histogram,phase=send,,2,") for r in rows)

    def test_prometheus_format(self, registry):
        text = registry.to_prometheus()
        assert "# TYPE repro_sent counter" in text
        assert '\nrepro_sent{engine="sync"} 10.0' in text
        # non-finite gauge samples are sanitized out of the scrape
        assert "# TYPE repro_drift gauge" in text
        assert "repro_drift +Inf" not in text
        assert 'repro_phase_bucket{le="0.1",phase="send"} 1' in text
        assert 'repro_phase_bucket{le="+Inf",phase="send"} 2' in text
        assert 'repro_phase_count{phase="send"} 2' in text

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(detail='say "hi"\\now')
        assert 'detail="say \\"hi\\"\\\\now"' in reg.to_prometheus()

    def test_dump_writes_three_formats(self, registry, tmp_path):
        out = registry.dump(tmp_path / "t")
        for name in ("metrics.jsonl", "metrics.csv", "metrics.prom"):
            assert (out / name).read_text()
