"""Unit tests for the experiment-harness support modules."""

import json
import math

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.figures import FigureResult
from repro.experiments.io import load_result, save_result
from repro.experiments.tables import format_cell, render_series, render_table
from repro.experiments.workloads import (
    bus_case_study_data,
    bus_equilibrium_flows,
    random_matrix,
    uniform_data,
)


class TestWorkloads:
    def test_uniform_data_reproducible(self):
        np.testing.assert_array_equal(
            uniform_data(10, seed=3), uniform_data(10, seed=3)
        )
        assert not np.array_equal(uniform_data(10, seed=3), uniform_data(10, seed=4))

    def test_uniform_data_range(self):
        data = uniform_data(100, seed=0, low=-2.0, high=3.0)
        assert data.min() >= -2.0
        assert data.max() < 3.0

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform_data(0)
        with pytest.raises(ValueError):
            uniform_data(5, low=1.0, high=1.0)

    def test_bus_case_study_data(self):
        data = bus_case_study_data(5)
        np.testing.assert_array_equal(data, [6.0, 1.0, 1.0, 1.0, 1.0])
        # The engineered average is 2 for every n.
        assert data.mean() == 2.0
        assert bus_case_study_data(100).mean() == 2.0

    def test_bus_equilibrium_flows(self):
        flows = bus_equilibrium_flows(5)
        assert flows == [4.0, 3.0, 2.0, 1.0]
        with pytest.raises(ValueError):
            bus_equilibrium_flows(1)

    def test_random_matrix_distributions(self):
        assert random_matrix(4, 3, seed=0).shape == (4, 3)
        assert random_matrix(4, 3, seed=0, distribution="normal").shape == (4, 3)
        graded = random_matrix(16, 6, seed=0, distribution="graded")
        col_norms = np.linalg.norm(graded, axis=0)
        assert col_norms[0] > col_norms[-1] * 1e6

    def test_random_matrix_unknown_distribution(self):
        with pytest.raises(ValueError):
            random_matrix(3, 3, distribution="cauchy")


class TestTables:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(7) == "7"
        assert format_cell(0.0) == "0"
        assert format_cell(1.5e-14) == "1.500e-14"
        assert format_cell(3.25) == "3.25"
        assert format_cell(float("nan")) == "nan"
        assert format_cell(float("-inf")) == "-inf"
        assert format_cell("text") == "text"

    def test_render_table_alignment(self):
        out = render_table(["a", "long_header"], [[1, 2.0], [333, None]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "-" in lines[1]
        assert all(len(line) <= len(lines[1]) + 2 for line in lines)

    def test_render_table_row_length_check(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_series(self):
        out = render_series("errors", [1.0, 0.5, 0.25, 0.125], every=2)
        assert "round    0" in out
        assert "round    3" in out  # final sample always included


class TestFigureResultIO:
    def test_roundtrip(self, tmp_path):
        result = FigureResult(
            figure="Fig. X",
            headers=["a", "err"],
            rows=[["row1", 1e-15], ["row2", float("inf")]],
            notes="note",
            series={"s": [1.0, 0.5]},
        )
        path = tmp_path / "out" / "fig.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.figure == result.figure
        assert loaded.headers == result.headers
        assert loaded.rows[0] == ["row1", 1e-15]
        assert loaded.rows[1][1] == float("inf")
        assert loaded.series == {"s": [1.0, 0.5]}

    def test_nan_roundtrip(self, tmp_path):
        result = FigureResult(
            figure="f", headers=["x"], rows=[[float("nan")]]
        )
        path = tmp_path / "fig.json"
        save_result(result, path)
        loaded = load_result(path)
        assert math.isnan(loaded.rows[0][0])

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_result(tmp_path / "missing.json")

    def test_load_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ExperimentError):
            load_result(path)

    def test_render_includes_notes_and_series(self):
        result = FigureResult(
            figure="F",
            headers=["x"],
            rows=[[1]],
            notes="a note",
            series={"curve": [0.5]},
        )
        out = result.render()
        assert "== F ==" in out
        assert "a note" in out
        assert "curve" in out


class TestCLI:
    def test_parser_choices(self):
        from repro.experiments.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["equivalence", "--scale", "small"])
        assert args.experiment == "equivalence"

    def test_run_experiment_and_save(self, tmp_path, capsys):
        from repro.experiments.cli import main

        target = tmp_path / "result.json"
        exit_code = main(["ablation-pf-variants", "--save", str(target)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Ablation A1" in out
        assert target.exists()
        payload = json.loads(target.read_text())
        assert payload["figure"].startswith("Ablation A1")


class TestCLIPlot:
    def test_plot_flag_renders_series(self, capsys):
        from repro.experiments.cli import main

        exit_code = main(["fig7", "--plot"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "error series" in out
        assert "rounds" in out
        assert "|" in out  # plot rows
