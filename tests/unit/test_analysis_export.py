"""Campaign aggregates through the telemetry metrics exporters."""

import json

from repro.analysis.campaigns.export import (
    campaign_metrics_registry,
    export_campaign_metrics,
    export_records_metrics,
)
from tests.unit.test_analysis_figures import synthetic_campaign


class TestCampaignMetricsRegistry:
    def test_coverage_and_scenario_gauges(self, tmp_path):
        data = synthetic_campaign(tmp_path)
        registry = campaign_metrics_registry(data)
        prom = registry.to_prometheus()
        for metric in (
            "campaign_cells",
            "campaign_progress_fraction",
            "campaign_cells_per_sec",
            "campaign_eta_seconds",
            "campaign_alerts_total",
            "campaign_flight_dumps_total",
            "campaign_scenario_converged_runs",
            "campaign_scenario_median_final_error",
            "campaign_cell_wall_seconds",
        ):
            assert metric in prom, metric
        assert 'status="expected"' in prom
        assert 'algorithm="push_sum"' in prom

    def test_progress_fraction_value(self, tmp_path):
        data = synthetic_campaign(tmp_path)
        registry = campaign_metrics_registry(data)
        line = next(
            ln
            for ln in registry.to_prometheus().splitlines()
            if ln.startswith("campaign_progress_fraction{")
        )
        value = float(line.rsplit(" ", 1)[1])
        assert 0.0 < value < 1.0  # synthetic campaign has cells in flight


class TestExports:
    def test_export_campaign_metrics_files(self, tmp_path):
        data = synthetic_campaign(tmp_path)
        results = tmp_path / "results.jsonl"
        with results.open("w") as fh:
            for row in data.frame.rows():
                fh.write(json.dumps(row) + "\n")
        out = export_campaign_metrics(tmp_path)
        assert out == tmp_path / "metrics"
        for suffix in ("jsonl", "csv", "prom"):
            assert (out / f"metrics.{suffix}").stat().st_size > 0

    def test_export_records_metrics_in_flight(self, tmp_path):
        records = [
            {
                "cell_id": f"push_sum|hc-8|none|s{i}",
                "status": "ok",
                "algorithm": "push_sum",
                "topology": "hypercube-8",
                "fault": "none",
                "converged": True,
                "final_error": 1e-9,
                "wall_s": 0.1,
                "recorded_at": 100.0 + i,
            }
            for i in range(3)
        ]
        out = export_records_metrics(
            records, name="inflight", spec=None, out_dir=tmp_path / "metrics"
        )
        prom = (out / "metrics.prom").read_text()
        assert 'campaign="inflight"' in prom
        assert "campaign_cells_per_sec" in prom
