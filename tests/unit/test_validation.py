"""Unit tests for repro.util.validation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.util.validation import (
    check_in,
    check_positive_int,
    check_probability,
    check_type,
)


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(3, "x") == 3

    def test_rejects_zero_by_default(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "x")

    def test_allow_zero(self):
        assert check_positive_int(0, "x", allow_zero=True) == 0

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(1.0, "x")

    def test_message_contains_name(self):
        with pytest.raises(ConfigurationError, match="nodes"):
            check_positive_int(-1, "nodes")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0, 0.5, 1, 1.0])
    def test_accepts(self, value):
        assert check_probability(value, "p") == float(value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, "abc", None])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_probability(value, "p")


class TestCheckIn:
    def test_accepts(self):
        assert check_in("a", ("a", "b"), "mode") == "a"

    def test_rejects(self):
        with pytest.raises(ConfigurationError, match="mode"):
            check_in("c", ("a", "b"), "mode")


class TestCheckType:
    def test_accepts(self):
        assert check_type(3, int, "x") == 3

    def test_tuple_of_types(self):
        assert check_type(3.0, (int, float), "x") == 3.0

    def test_rejects(self):
        with pytest.raises(ConfigurationError):
            check_type("3", int, "x")
