"""Unit tests for the telemetry collector, phase timer, probes and session."""

import json

import numpy as np
import pytest

from repro.faults.base import MessageFault
from repro.faults.events import FaultPlan, LinkFailure
from repro.faults.message_loss import IidMessageLoss
from repro.telemetry import (
    FaultTimelineProbe,
    FlowMagnitudeProbe,
    MassConservationProbe,
    MetricsRegistry,
    PCFCancellationProbe,
    PhaseTimer,
    TelemetryCollector,
    capture,
    current,
)
from repro.topology import hypercube, ring
from repro.vectorized import VectorPushCancelFlow, VectorPushFlow, VectorPushSum
from tests.conftest import build_engine


class TestTelemetryCollector:
    def test_sync_engine_totals_match_engine_counters(self):
        reg = MetricsRegistry()
        collector = TelemetryCollector(reg, engine_kind="sync")
        topo = ring(5)
        engine, _ = build_engine(
            topo,
            "push_flow",
            [1.0] * 5,
            message_fault=IidMessageLoss(0.3, seed=2),
            observers=[collector],
        )
        engine.run(20)
        assert reg.counter("repro_rounds_total").value(engine="sync") == 20
        assert reg.counter("repro_runs_total").value(engine="sync") == 1
        assert (
            reg.counter("repro_messages_sent_total").value(engine="sync")
            == engine.messages_sent
        )
        dropped = reg.counter("repro_messages_dropped_total").value(
            engine="sync", reason="injector"
        )
        assert dropped == engine.messages_sent - engine.messages_delivered
        assert dropped > 0

    def test_fault_and_handling_counts(self):
        reg = MetricsRegistry()
        collector = TelemetryCollector(reg, engine_kind="sync")
        topo = ring(4)
        plan = FaultPlan(link_failures=[LinkFailure(round=1, u=0, v=1)])
        engine, _ = build_engine(
            topo, "push_flow", [1.0] * 4, fault_plan=plan, observers=[collector]
        )
        engine.run(5)
        faults = reg.counter("repro_faults_injected_total")
        assert faults.value(engine="sync", kind="link_failure") == 1
        assert reg.counter("repro_link_handlings_total").value(engine="sync") == 1

    def test_batched_hook_matches_per_message_totals(self):
        # The vectorized engines report through on_round_messages; the
        # resulting totals must equal what per-message hooks would produce.
        reg = MetricsRegistry()
        collector = TelemetryCollector(reg, engine_kind="vector")
        engine = VectorPushSum(
            hypercube(3),
            np.arange(8.0),
            np.ones(8),
            seed=1,
            loss_probability=0.25,
            observers=[collector],
        )
        engine.run(30)
        sent = reg.counter("repro_messages_sent_total").value(engine="vector")
        dropped = reg.counter("repro_messages_dropped_total").value(
            engine="vector", reason="injector"
        )
        assert sent == engine.messages_sent == 240
        assert dropped == engine.messages_sent - engine.messages_delivered
        assert reg.counter("repro_rounds_total").value(engine="vector") == 30


class TestAsyncEngineTelemetry:
    def test_async_engine_emits_same_metric_names(self):
        from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
        from repro.algorithms.registry import instantiate
        from repro.simulation.async_engine import AsynchronousEngine

        reg = MetricsRegistry()
        topo = ring(6)
        initial = initial_mass_pairs(AggregateKind.AVERAGE, [1.0] * 6)
        algs = instantiate("push_sum", topo, initial)
        engine = AsynchronousEngine(
            topo,
            algs,
            seed=0,
            message_fault=IidMessageLoss(0.3, seed=1),
            observers=[
                TelemetryCollector(reg, engine_kind="async"),
                PhaseTimer(reg, engine_kind="async"),
            ],
        )
        engine.run(10.0)
        assert (
            reg.counter("repro_messages_sent_total").value(engine="async")
            == engine.messages_sent
            > 0
        )
        assert (
            reg.counter("repro_messages_dropped_total").value(
                engine="async", reason="injector"
            )
            > 0
        )
        # Integer-time boundary crossings are reported as rounds.
        assert reg.counter("repro_rounds_total").value(engine="async") == 10
        assert reg.counter("repro_runs_total").value(engine="async") == 1
        snap = reg.histogram("repro_phase_seconds").snapshot(
            engine="async", phase="send"
        )
        assert snap["count"] == engine.activations


class TestPhaseTimer:
    def test_collects_sync_engine_phases(self):
        timer = PhaseTimer()
        engine, _ = build_engine(ring(4), "push_sum", [1.0] * 4, observers=[timer])
        engine.run(6)
        assert set(timer.totals) == {"send", "transport", "deliver", "handle"}
        assert all(count == 6 for count in timer.counts.values())
        assert all(total >= 0.0 for total in timer.totals.values())

    def test_histogram_metric_when_registry_given(self):
        reg = MetricsRegistry()
        timer = PhaseTimer(reg, engine_kind="sync")
        engine, _ = build_engine(ring(4), "push_sum", [1.0] * 4, observers=[timer])
        engine.run(3)
        snap = reg.histogram("repro_phase_seconds").snapshot(
            engine="sync", phase="send"
        )
        assert snap["count"] == 3

    def test_manual_time_block(self):
        timer = PhaseTimer()
        with timer.time("analysis"):
            sum(range(1000))
        assert timer.counts["analysis"] == 1
        assert timer.totals["analysis"] >= 0.0

    def test_summary_sorted_by_total(self):
        timer = PhaseTimer()
        timer._record("sync", "fast", 0.1)
        timer._record("sync", "slow", 5.0)
        timer._record("sync", "slow", 1.0)
        rows = timer.summary()
        assert rows[0] == ("slow", 6.0, 2, 3.0, 5.0)
        assert rows[1][0] == "fast"


class TestFlowMagnitudeProbe:
    def test_object_pf_records_growing_flows(self):
        probe = FlowMagnitudeProbe()
        engine, _ = build_engine(
            ring(6), "push_flow", [6.0, 0, 0, 0, 0, 0], observers=[probe]
        )
        engine.run(10)
        assert len(probe.records) == 10
        rec = probe.records[-1]
        assert rec["type"] == "flow"
        assert rec["max_flow"] > 0.0
        assert rec["max_flow"] >= rec["mean_flow"] > 0.0
        assert probe.max_flow_series() == [r["max_flow"] for r in probe.records]

    def test_push_sum_engine_is_silently_skipped(self):
        probe = FlowMagnitudeProbe()
        engine, _ = build_engine(ring(4), "push_sum", [1.0] * 4, observers=[probe])
        engine.run(5)
        assert probe.records == []

    def test_vectorized_pf_matches_object_semantics(self):
        probe = FlowMagnitudeProbe(registry=MetricsRegistry())
        engine = VectorPushFlow(
            hypercube(3), np.arange(8.0), np.ones(8), seed=0, observers=[probe]
        )
        engine.run(12)
        assert len(probe.records) == 12
        assert probe.records[-1]["max_flow"] > 0.0

    def test_thinning_and_final_sample(self):
        probe = FlowMagnitudeProbe(every=4)
        engine, _ = build_engine(ring(4), "push_flow", [1.0] * 4, observers=[probe])
        engine.run(10)
        # Rounds 0, 4, 8 pass the filter; on_run_end forces round 9.
        assert [r["round"] for r in probe.records] == [0, 4, 8, 9]


class DropEverything(MessageFault):
    def apply(self, message):
        return None


class TestMassConservationProbe:
    def test_crossing_free_run_conserves_mass(self):
        # All nodes gossip clockwise: no message crossings, no loss, so
        # pairwise flow antisymmetry (hence global mass) holds exactly at
        # every round boundary.
        from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
        from repro.algorithms.registry import instantiate
        from repro.simulation.engine import SynchronousEngine
        from repro.simulation.schedule import FixedSchedule

        topo = ring(5)
        initial = initial_mass_pairs(AggregateKind.AVERAGE, list(range(5)))
        algs = instantiate("push_flow", topo, initial)
        probe = MassConservationProbe(tolerance=1e-9)
        engine = SynchronousEngine(
            topo,
            algs,
            FixedSchedule([[1, 2, 3, 4, 0]] * 20),
            observers=[probe],
        )
        engine.run(20)
        assert probe.worst_drift() <= 1e-12
        assert probe.violations == []

    def test_crossing_drift_is_transient(self):
        # Uniform gossip produces message crossings whose mirror-flow
        # overwrites transiently break conservation; the drift must stay
        # finite and self-heal rather than accumulate.
        probe = MassConservationProbe(tolerance=1e-9)
        engine, _ = build_engine(
            ring(5), "push_flow", list(range(5)), observers=[probe]
        )
        engine.run(400)
        drifts = [r["drift"] for r in probe.records]
        assert all(np.isfinite(d) for d in drifts)
        # Healed (exactly) on at least some later sampled rounds.
        assert min(drifts[200:]) <= 1e-12

    def test_push_sum_mass_leak_under_loss_is_flagged(self):
        # Push-sum halves the sender's mass whether or not the message
        # arrives, so loss permanently destroys mass. The baseline captured
        # at run start makes that visible as persistent drift.
        probe = MassConservationProbe(tolerance=1e-3)
        engine, _ = build_engine(
            ring(5),
            "push_sum",
            list(range(1, 6)),
            message_fault=IidMessageLoss(0.5, seed=4),
            observers=[probe],
        )
        engine.run(30)
        assert probe.worst_drift() > 0.1
        assert probe.records[-1]["drift"] > 0.1  # persistent, not a spike
        assert probe.violations

    def test_lost_flow_message_shows_up_as_drift(self):
        # PF's virtual send updates the sender's flow before transport; a
        # dropped message leaves the pairwise flows asymmetric, so the
        # summed live estimates drift off the conserved total.
        probe = MassConservationProbe(tolerance=1e-9)
        engine, _ = build_engine(
            ring(3),
            "push_flow",
            [3.0, 0.0, 0.0],
            message_fault=DropEverything(),
            observers=[probe],
        )
        engine.run(2)
        assert probe.worst_drift() > 1e-3
        assert probe.violations
        violation = probe.violations[0]
        assert violation["probe"] == "mass_conservation"
        assert violation["drift"] > probe.tolerance

    def test_violation_counter_increments(self):
        reg = MetricsRegistry()
        probe = MassConservationProbe(tolerance=1e-9, registry=reg)
        engine, _ = build_engine(
            ring(3),
            "push_flow",
            [3.0, 0.0, 0.0],
            message_fault=DropEverything(),
            observers=[probe],
        )
        engine.run(3)
        assert (
            reg.counter("repro_invariant_violations_total").value(
                probe="mass_conservation"
            )
            == len(probe.violations)
            > 0
        )

    def test_vectorized_baseline_from_run_start(self):
        # Same crossing-induced transient drift as the object engine
        # (parity-tested semantics); must stay finite and self-heal.
        probe = MassConservationProbe(tolerance=1e-6)
        engine = VectorPushFlow(
            hypercube(3), np.arange(8.0), np.ones(8), seed=0, observers=[probe]
        )
        engine.run(400)
        drifts = [r["drift"] for r in probe.records]
        assert len(drifts) == 400
        assert all(np.isfinite(d) for d in drifts)
        assert min(drifts[200:]) <= 1e-9

    def test_bad_tolerance(self):
        with pytest.raises(ValueError):
            MassConservationProbe(tolerance=0.0)


class TestPCFCancellationProbe:
    def test_object_pcf_progress(self):
        probe = PCFCancellationProbe()
        engine, algs = build_engine(
            hypercube(3), "push_cancel_flow", list(range(8)), observers=[probe]
        )
        engine.run(30)
        rec = probe.records[-1]
        assert rec["type"] == "pcf"
        assert rec["cancellations"] == sum(a.cancellations for a in algs)
        assert rec["cancellations"] > 0
        assert rec["era_max"] >= 1
        assert rec["passive_flow"] >= 0.0

    def test_non_pcf_engine_is_skipped(self):
        probe = PCFCancellationProbe()
        engine, _ = build_engine(ring(4), "push_flow", [1.0] * 4, observers=[probe])
        engine.run(5)
        assert probe.records == []

    def test_vectorized_pcf_counters(self):
        probe = PCFCancellationProbe(registry=MetricsRegistry())
        engine = VectorPushCancelFlow(
            hypercube(3), np.arange(8.0), np.ones(8), seed=0, observers=[probe]
        )
        engine.run(30)
        rec = probe.records[-1]
        assert rec["cancellations"] == engine.cancellations > 0
        assert rec["era_max"] >= 1


class TestFaultTimelineProbe:
    def test_records_faults_and_handlings(self):
        probe = FaultTimelineProbe()
        plan = FaultPlan(
            link_failures=[LinkFailure(round=1, u=0, v=1, detection_delay=2)]
        )
        engine, _ = build_engine(
            ring(4), "push_flow", [1.0] * 4, fault_plan=plan, observers=[probe]
        )
        engine.run(6)
        kinds = [e["kind"] for e in probe.events]
        assert kinds == ["link_failure", "link_handled"]
        assert probe.events[0]["round"] == 1
        assert probe.events[1]["round"] == 3


class TestTelemetrySession:
    def test_capture_instruments_engines_and_dumps(self, tmp_path):
        target = tmp_path / "telemetry"
        with capture(target, trace_every=2) as session:
            assert current() is session
            engine, _ = build_engine(ring(4), "push_flow", [1.0] * 4)
            engine.run(8)
        assert current() is None
        assert (
            session.registry.counter("repro_rounds_total").value(engine="sync")
            == 8
        )
        metrics = (target / "metrics.jsonl").read_text()
        assert "repro_messages_sent_total" in metrics
        trace_lines = [
            json.loads(line)
            for line in (target / "trace.jsonl").read_text().splitlines()
        ]
        types = {line["type"] for line in trace_lines}
        assert {"round", "flow", "mass"} <= types
        assert all(line["run"] == 0 for line in trace_lines)
        assert all(line["algorithm"] == "PushFlow" for line in trace_lines)

    def test_no_session_means_no_observers(self):
        engine, _ = build_engine(ring(4), "push_sum", [1.0] * 4)
        assert not engine._observer

    def test_sessions_nest(self):
        with capture() as outer:
            with capture() as inner:
                assert current() is inner
            assert current() is outer
        assert current() is None
