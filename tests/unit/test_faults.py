"""Unit tests for the fault-injection framework."""


import numpy as np
import pytest

from repro.algorithms.push_flow import FlowPayload
from repro.algorithms.push_sum import PushSumPayload
from repro.algorithms.flow_edge import PCFPayload
from repro.algorithms.state import MassPair
from repro.exceptions import ConfigurationError
from repro.faults.base import CompositeFault, NoFault
from repro.faults.bit_flip import BitFlipFault, corrupt_payload
from repro.faults.events import (
    FaultPlan,
    LinkFailure,
    NodeFailure,
    single_link_failure,
)
from repro.faults.message_loss import BurstMessageLoss, IidMessageLoss
from repro.simulation.messages import Message


def make_message(payload=None):
    return Message(
        sender=0,
        receiver=1,
        round=0,
        payload=payload or FlowPayload(flow=MassPair(1.5, 0.5)),
    )


class TestMessage:
    def test_edge_canonical(self):
        assert make_message().edge() == (0, 1)
        assert Message(3, 1, 0, None).edge() == (1, 3)

    def test_with_payload_preserves_route(self):
        msg = make_message()
        new = msg.with_payload("x")
        assert (new.sender, new.receiver, new.round) == (0, 1, 0)
        assert new.payload == "x"


class TestIidLoss:
    def test_zero_probability_never_drops(self):
        fault = IidMessageLoss(0.0, seed=0)
        assert all(fault.apply(make_message()) is not None for _ in range(100))
        assert fault.dropped == 0

    def test_one_probability_always_drops(self):
        fault = IidMessageLoss(1.0, seed=0)
        assert all(fault.apply(make_message()) is None for _ in range(100))
        assert fault.dropped == 100

    def test_rate_roughly_matches(self):
        fault = IidMessageLoss(0.3, seed=1)
        drops = sum(fault.apply(make_message()) is None for _ in range(5000))
        assert 0.25 < drops / 5000 < 0.35

    def test_reset_restores_stream(self):
        fault = IidMessageLoss(0.5, seed=2)
        first = [fault.apply(make_message()) is None for _ in range(50)]
        fault.reset()
        second = [fault.apply(make_message()) is None for _ in range(50)]
        assert first == second

    def test_bad_probability(self):
        with pytest.raises(ConfigurationError):
            IidMessageLoss(1.5)


class TestBurstLoss:
    def test_bursty_pattern(self):
        fault = BurstMessageLoss(0.2, 0.3, seed=0)
        outcomes = [fault.apply(make_message()) is None for _ in range(2000)]
        # Bursts: consecutive drops are much more frequent than under iid
        # with the same marginal rate.
        drops = sum(outcomes)
        pairs = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a and b)
        assert drops > 0
        assert pairs / max(drops, 1) > 0.3

    def test_per_edge_state(self):
        fault = BurstMessageLoss(1.0, 0.0001, seed=0)
        a = Message(0, 1, 0, None)
        b = Message(2, 3, 0, None)
        fault.apply(a)
        # Edge (0,1) is bad now; edge (2,3) has independent state.
        results = [fault.apply(b) for _ in range(5)]
        assert any(r is not None for r in results) or fault.dropped >= 5

    def test_permanent_bad_state_rejected(self):
        with pytest.raises(ValueError):
            BurstMessageLoss(0.5, 0.0)


class TestBitFlip:
    def test_zero_probability_is_identity(self):
        fault = BitFlipFault(0.0, seed=0)
        msg = make_message()
        assert fault.apply(msg) is msg

    def test_flip_changes_payload(self):
        fault = BitFlipFault(1.0, seed=0)
        msg = make_message()
        corrupted = fault.apply(msg)
        assert corrupted is not None
        assert not corrupted.payload.flow.exactly_equals(msg.payload.flow)
        assert fault.flips == 1

    def test_original_payload_untouched(self):
        fault = BitFlipFault(1.0, seed=0)
        msg = make_message()
        fault.apply(msg)
        assert msg.payload.flow.value == 1.5  # frozen dataclass semantics

    def test_corrupt_push_sum_payload(self):
        rng = np.random.default_rng(0)
        payload = PushSumPayload(mass=MassPair(2.0, 1.0))
        corrupted = corrupt_payload(payload, rng)
        assert not corrupted.mass.exactly_equals(payload.mass)

    def test_corrupt_pcf_payload(self):
        rng = np.random.default_rng(0)
        payload = PCFPayload(
            flow_a=MassPair(1.0, 1.0),
            flow_b=MassPair(2.0, 2.0),
            active=0,
            era=3,
        )
        corrupted = corrupt_payload(payload, rng)
        assert corrupted != payload
        assert corrupted.active == 0 and corrupted.era == 3  # control untouched

    def test_corrupt_control_fields_optional(self):
        rng = np.random.default_rng(4)
        payload = PCFPayload(
            flow_a=MassPair(1.0, 1.0),
            flow_b=MassPair(2.0, 2.0),
            active=0,
            era=3,
        )
        seen_control_change = False
        for _ in range(64):
            corrupted = corrupt_payload(payload, rng, corrupt_control=True)
            if corrupted.active != payload.active or corrupted.era != payload.era:
                seen_control_change = True
        assert seen_control_change

    def test_vector_payload_flip(self):
        rng = np.random.default_rng(1)
        payload = FlowPayload(flow=MassPair(np.array([1.0, 2.0, 3.0]), 1.0))
        corrupted = corrupt_payload(payload, rng)
        assert not corrupted.flow.exactly_equals(payload.flow)

    def test_non_dataclass_payload_rejected(self):
        from repro.exceptions import ProtocolError

        with pytest.raises(ProtocolError):
            corrupt_payload("not a payload", np.random.default_rng(0))


class TestComposite:
    def test_order_and_drop_short_circuit(self):
        loss = IidMessageLoss(1.0, seed=0)
        flip = BitFlipFault(1.0, seed=0)
        fault = CompositeFault([loss, flip])
        assert fault.apply(make_message()) is None
        assert flip.flips == 0  # never reached

    def test_reset_cascades(self):
        loss = IidMessageLoss(0.5, seed=0)
        fault = CompositeFault([loss])
        fault.apply(make_message())
        fault.reset()
        assert loss.dropped == 0

    def test_no_fault_identity(self):
        msg = make_message()
        assert NoFault().apply(msg) is msg


class TestFaultPlan:
    def test_link_failure_fields(self):
        failure = LinkFailure(round=5, u=3, v=1, detection_delay=2)
        assert failure.edge == (1, 3)
        assert failure.handle_round == 7

    def test_rejects_negative_round(self):
        with pytest.raises(ConfigurationError):
            LinkFailure(round=-1, u=0, v=1)
        with pytest.raises(ConfigurationError):
            NodeFailure(round=1, node=0, detection_delay=-1)

    def test_rejects_self_edge(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(link_failures=[LinkFailure(round=0, u=1, v=1)])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(
                link_failures=[
                    LinkFailure(round=0, u=0, v=1),
                    LinkFailure(round=5, u=1, v=0),
                ]
            )
        with pytest.raises(ConfigurationError):
            FaultPlan(
                node_failures=[
                    NodeFailure(round=0, node=1),
                    NodeFailure(round=2, node=1),
                ]
            )

    def test_round_queries(self):
        plan = FaultPlan(
            link_failures=[LinkFailure(round=3, u=0, v=1, detection_delay=2)],
            node_failures=[NodeFailure(round=4, node=7)],
        )
        assert plan.dead_edges_by(2) == frozenset()
        assert plan.dead_edges_by(3) == frozenset({(0, 1)})
        assert plan.link_handlings_at(5) == list(plan.link_failures)
        assert plan.node_handlings_at(4) == list(plan.node_failures)
        assert plan.dead_nodes_by(4) == frozenset({7})
        assert plan.last_event_round() == 5

    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert plan.last_event_round() == -1

    def test_single_link_failure_helper(self):
        plan = single_link_failure(75, 0, 1)
        assert not plan.is_empty()
        assert plan.link_failures[0].handle_round == 75
