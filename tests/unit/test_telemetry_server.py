"""HTTP metrics server: endpoints, sources, and default-off behavior."""

import json
import urllib.error
import urllib.request

import pytest

from repro.campaigns import CampaignSpec, run_campaign
from repro.telemetry import MetricsRegistry, parse_prometheus_text
from repro.telemetry.server import (
    CampaignLiveSource,
    DirectorySource,
    MetricsServer,
)


def get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read()


def tiny_spec(**overrides):
    raw = {
        "name": "tiny-live",
        "algorithms": ["push_flow"],
        "topologies": [{"family": "hypercube", "n": 8}],
        "faults": [{"kind": "none"}],
        "seeds": [0, 1],
        "rounds": 30,
        "epsilon": 1e-3,
    }
    raw.update(overrides)
    return CampaignSpec.from_dict(raw)


@pytest.fixture()
def live_source(tmp_path):
    registry = MetricsRegistry()
    registry.counter("engine_rounds_total", "rounds").inc(
        30.0, algorithm="push_flow", engine="object", backend="none"
    )
    source = CampaignLiveSource(
        name="tiny-live",
        spec=tiny_spec().to_dict(),
        out_dir=tmp_path,
        registry=registry,
    )
    from repro.campaigns.runner import execute_cell

    record = execute_cell(tiny_spec().expand()[0])
    record.pop("_metrics_snapshot", None)
    record["recorded_at"] = 1.7e9
    source.add_record(record)
    return source


class TestEndpoints:
    def test_all_endpoints_respond(self, live_source):
        with MetricsServer(live_source) as server:
            assert server.url.startswith("http://127.0.0.1:")

            status, ctype, body = get(server.url + "/metrics")
            assert status == 200 and ctype.startswith("text/plain")
            samples = parse_prometheus_text(body.decode())
            names = {name for name, _l, _v in samples}
            assert {"campaign_cells_total", "engine_rounds_total"} <= names

            status, ctype, body = get(server.url + "/healthz")
            assert status == 200 and ctype.startswith("application/json")
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["cells_recorded"] == 1

            _status, _ctype, body = get(server.url + "/progress")
            progress = json.loads(body)
            assert progress["campaign"] == "tiny-live"
            assert progress["progress"]["cells_recorded"] == 1

            _status, _ctype, body = get(server.url + "/alerts")
            assert json.loads(body)["campaign"] == "tiny-live"

            _status, _ctype, body = get(server.url + "/dashboard")
            html = body.decode()
            assert html.startswith("<!DOCTYPE html>")
            assert '<meta http-equiv="refresh"' in html

    def test_unknown_path_is_404(self, live_source):
        with MetricsServer(live_source) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(server.url + "/nope")
            assert err.value.code == 404

    def test_source_exception_is_500(self):
        class Broken:
            def health(self):
                raise RuntimeError("boom")

        with MetricsServer(Broken()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(server.url + "/healthz")
            assert err.value.code == 500

    def test_ephemeral_port_allocated_per_server(self, live_source):
        with MetricsServer(live_source) as one, MetricsServer(
            live_source
        ) as two:
            assert one.port != two.port
            assert one.port > 0

    def test_healthz_degraded_on_export_errors(self, live_source):
        live_source._registry.counter(
            "campaign_export_errors_total", "failures"
        ).inc(campaign="tiny-live")
        with MetricsServer(live_source) as server:
            health = json.loads(get(server.url + "/healthz")[2])
        assert health["status"] == "degraded"
        assert health["export_errors"] == 1


class TestDirectorySource:
    def test_serves_finished_campaign(self, tmp_path):
        run = run_campaign(tiny_spec(), tmp_path, log=lambda _m: None)
        assert run.ok == 2
        source = DirectorySource(tmp_path)
        with MetricsServer(source) as server:
            samples = parse_prometheus_text(
                get(server.url + "/metrics")[2].decode()
            )
            cells = [
                v
                for name, _l, v in samples
                if name == "campaign_cells_total"
            ]
            assert cells == [2.0]
            progress = json.loads(get(server.url + "/progress")[2])
            assert progress["progress"]["cells_recorded"] == 2
            assert json.loads(get(server.url + "/healthz")[2])["status"] == "ok"

    def test_rejects_non_campaign_directory(self, tmp_path):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            DirectorySource(tmp_path / "nowhere")


class TestRunnerIntegration:
    def test_no_socket_and_no_server_json_by_default(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path, log=lambda _m: None)
        assert not (tmp_path / "server.json").exists()

    def test_metrics_port_serves_and_writes_server_json(self, tmp_path):
        scraped = {}

        def scrape(msg):
            # The runner logs "live metrics: <url>" before any cell runs;
            # scrape from inside the log hook while the sweep is alive.
            if "live metrics:" in msg and "url" not in scraped:
                scraped["url"] = msg.split("live metrics:")[1].strip()
                scraped["health"] = json.loads(
                    get(scraped["url"] + "/healthz")[2]
                )

        run = run_campaign(
            tiny_spec(), tmp_path, log=scrape, metrics_port=0
        )
        assert run.ok == 2
        assert scraped["health"]["status"] == "ok"

        info = json.loads((tmp_path / "server.json").read_text())
        assert info["url"] == scraped["url"]
        assert set(info["endpoints"]) == {
            "/metrics",
            "/healthz",
            "/progress",
            "/alerts",
            "/dashboard",
        }
        # The sweep is over: the socket must be closed again.
        with pytest.raises((urllib.error.URLError, ConnectionError)):
            get(scraped["url"] + "/healthz", timeout=1.0)

    def test_run_returns_merged_registry(self, tmp_path):
        run = run_campaign(tiny_spec(), tmp_path, log=lambda _m: None)
        counter = run.metrics.counter("engine_rounds_total")
        assert (
            counter.value(
                algorithm="push_flow", engine="object", backend="none"
            )
            > 0
        )
