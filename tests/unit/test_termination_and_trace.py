"""Unit tests for local termination detection and run tracing."""

import json

import numpy as np
import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs, true_aggregate
from repro.algorithms.registry import instantiate
from repro.exceptions import ConfigurationError
from repro.metrics import LocalTermination
from repro.metrics.errors import max_local_error
from repro.simulation import SynchronousEngine, TraceRecorder, UniformGossipSchedule
from repro.telemetry.sampling import RoundSampler
from repro.faults.events import FaultPlan, LinkFailure
from repro.topology import hypercube


def build(topo, algorithm, data, observers, fault_plan=None, seed=3):
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    algs = instantiate(algorithm, topo, initial)
    engine = SynchronousEngine(
        topo,
        algs,
        UniformGossipSchedule(topo.n, seed),
        observers=observers,
        fault_plan=fault_plan,
    )
    return engine, algs


class TestLocalTermination:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LocalTermination(rel_tolerance=0.0)
        with pytest.raises(ConfigurationError):
            LocalTermination(window=0)

    def test_terminates_near_oracle_point(self):
        topo = hypercube(5)
        data = np.random.default_rng(0).uniform(size=topo.n)
        truth = true_aggregate(AggregateKind.AVERAGE, list(data))
        detector = LocalTermination(rel_tolerance=1e-13, window=25)
        engine, _ = build(topo, "push_cancel_flow", data, [detector])
        executed = engine.run(3000, stop_when=detector.stop_condition())
        assert detector.all_stable
        # The locally detected stop delivers genuinely converged results.
        assert max_local_error(engine.estimates(), truth) < 1e-11
        # ...without running absurdly long.
        assert executed < 1500

    def test_window_prevents_premature_stop(self):
        topo = hypercube(4)
        data = np.random.default_rng(1).uniform(size=topo.n)
        detector = LocalTermination(rel_tolerance=1e-13, window=40)
        engine, _ = build(topo, "push_cancel_flow", data, [detector])
        engine.run(10)
        # Far from converged after 10 rounds: nothing can be stable yet.
        assert not detector.all_stable
        assert detector.stable_fraction(engine) < 1.0

    def test_stability_resets_on_change(self):
        # A failure mid-run perturbs the estimates; stability must reset.
        topo = hypercube(4)
        data = np.random.default_rng(2).uniform(size=topo.n)
        detector = LocalTermination(rel_tolerance=1e-13, window=20)
        plan = FaultPlan(link_failures=[LinkFailure(round=250, u=0, v=1)])
        engine, _ = build(topo, "push_flow", data, [detector], fault_plan=plan)
        engine.run(240)
        was_stable = detector.all_stable
        engine.run(15)  # failure at 250 shakes PF hard
        assert was_stable
        assert not detector.all_stable


class TestTraceRecorder:
    def test_records_every_round(self):
        topo = hypercube(3)
        data = np.random.default_rng(3).uniform(size=topo.n)
        trace = TraceRecorder()
        engine, _ = build(topo, "push_sum", data, [trace])
        engine.run(20)
        assert len(trace.records) == 20
        last = trace.last()
        assert last.round == 19
        assert last.live_nodes == topo.n
        assert last.messages_sent == 20 * topo.n
        assert last.finite
        assert last.estimate_spread >= 0.0

    def test_thinning_keeps_failure_rounds(self):
        topo = hypercube(3)
        data = np.random.default_rng(4).uniform(size=topo.n)
        trace = TraceRecorder(sampler=RoundSampler(every=10))
        plan = FaultPlan(link_failures=[LinkFailure(round=7, u=0, v=1)])
        engine, _ = build(topo, "push_flow", data, [trace], fault_plan=plan)
        engine.run(30)
        rounds = [r.round for r in trace.records]
        assert 7 in rounds  # failure round always recorded
        handled = [r for r in trace.records if r.link_handlings]
        assert handled and handled[0].link_handlings == ["link(0,1)"]

    def test_jsonl_dump(self, tmp_path):
        topo = hypercube(3)
        data = np.random.default_rng(5).uniform(size=topo.n)
        trace = TraceRecorder()
        engine, _ = build(topo, "push_sum", data, [trace])
        engine.run(5)
        path = tmp_path / "trace" / "run.jsonl"
        count = trace.dump_jsonl(path)
        assert count == 5
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 5
        payload = json.loads(lines[-1])
        assert payload["round"] == 4

    def test_bad_every(self):
        with pytest.raises(ConfigurationError), pytest.warns(DeprecationWarning):
            TraceRecorder(every=0)

    def test_every_alias_warns_and_thins(self):
        with pytest.warns(DeprecationWarning, match="sampler=RoundSampler"):
            trace = TraceRecorder(every=10)
        topo = hypercube(3)
        data = np.random.default_rng(4).uniform(size=topo.n)
        engine, _ = build(topo, "push_sum", data, [trace])
        engine.run(30)
        assert [r.round for r in trace.records] == [0, 10, 20]

    def test_to_json_sanitizes_non_finite(self):
        # Regression: NaN/inf serialized as bare NaN/Infinity (invalid
        # JSON) instead of null, unlike dump_jsonl.
        from repro.simulation import RoundRecord

        record = RoundRecord(
            round=3,
            live_nodes=4,
            messages_sent=12,
            messages_delivered=10,
            estimate_min=float("nan"),
            estimate_max=float("inf"),
            estimate_spread=float("nan"),
            finite=False,
            link_handlings=[],
        )
        payload = json.loads(record.to_json())  # must be strictly valid JSON
        assert payload["estimate_min"] is None
        assert payload["estimate_max"] is None
        assert payload["estimate_spread"] is None
        assert payload["round"] == 3
        assert payload["finite"] is False

    def test_to_json_matches_dump_jsonl_line(self, tmp_path):
        topo = hypercube(3)
        data = np.random.default_rng(5).uniform(size=topo.n)
        trace = TraceRecorder()
        engine, _ = build(topo, "push_sum", data, [trace])
        engine.run(3)
        path = tmp_path / "run.jsonl"
        trace.dump_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert [json.loads(r.to_json()) for r in trace.records] == [
            json.loads(line) for line in lines
        ]
