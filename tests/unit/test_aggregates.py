"""Unit tests for repro.algorithms.aggregates."""

import math

import numpy as np
import pytest

from repro.algorithms.aggregates import (
    AggregateKind,
    initial_mass_pairs,
    initial_values,
    initial_weights,
    relative_error,
    true_aggregate,
)
from repro.exceptions import ConfigurationError


class TestInitialWeights:
    def test_average(self):
        assert initial_weights(AggregateKind.AVERAGE, 4) == [1.0] * 4

    def test_sum_root(self):
        weights = initial_weights(AggregateKind.SUM, 4, root=2)
        assert weights == [0.0, 0.0, 1.0, 0.0]

    def test_count_is_sum_weighted(self):
        assert initial_weights(AggregateKind.COUNT, 3) == [1.0, 0.0, 0.0]

    def test_bad_root(self):
        with pytest.raises(ConfigurationError):
            initial_weights(AggregateKind.SUM, 3, root=3)

    def test_weighted_requires_custom(self):
        with pytest.raises(ConfigurationError):
            initial_weights(AggregateKind.WEIGHTED_AVERAGE, 3)

    def test_weighted_custom(self):
        weights = initial_weights(
            AggregateKind.WEIGHTED_AVERAGE, 3, custom=[1.0, 2.0, 0.0]
        )
        assert weights == [1.0, 2.0, 0.0]

    def test_weighted_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            initial_weights(AggregateKind.WEIGHTED_AVERAGE, 2, custom=[1.0, -1.0])

    def test_weighted_rejects_zero_total(self):
        with pytest.raises(ConfigurationError):
            initial_weights(AggregateKind.WEIGHTED_AVERAGE, 2, custom=[0.0, 0.0])

    def test_weighted_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            initial_weights(AggregateKind.WEIGHTED_AVERAGE, 2, custom=[1.0])


class TestInitialValues:
    def test_count_replaces_with_ones(self):
        values = initial_values(AggregateKind.COUNT, [5.0, 7.0])
        assert values == [1.0, 1.0]

    def test_other_kinds_pass_through(self):
        values = initial_values(AggregateKind.AVERAGE, [5, 7])
        assert values == [5.0, 7.0]
        assert all(isinstance(v, float) for v in values)

    def test_vector_values(self):
        values = initial_values(AggregateKind.SUM, [np.array([1, 2])])
        assert values[0].dtype == np.float64


class TestTrueAggregate:
    def test_average(self):
        assert true_aggregate(AggregateKind.AVERAGE, [1.0, 2.0, 3.0]) == 2.0

    def test_sum(self):
        assert true_aggregate(AggregateKind.SUM, [1.0, 2.0, 3.0]) == 6.0

    def test_count(self):
        assert true_aggregate(AggregateKind.COUNT, [9.0, 9.0, 9.0, 9.0]) == 4.0

    def test_vector_average(self):
        data = [np.array([1.0, 0.0]), np.array([3.0, 2.0])]
        np.testing.assert_allclose(
            true_aggregate(AggregateKind.AVERAGE, data), [2.0, 1.0]
        )

    def test_compensated_summation_beats_naive(self):
        # Data engineered so naive summation loses low-order bits.
        data = [1e16, 1.0, -1e16, 1.0]
        assert true_aggregate(AggregateKind.SUM, data) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            true_aggregate(AggregateKind.SUM, [])

    def test_vector_shape_mismatch(self):
        data = [np.array([1.0]), np.array([1.0, 2.0])]
        with pytest.raises(ConfigurationError):
            true_aggregate(AggregateKind.SUM, data)


class TestInitialMassPairs:
    def test_pairs_match_weights(self):
        pairs = initial_mass_pairs(AggregateKind.SUM, [1.0, 2.0], root=1)
        assert pairs[0].weight == 0.0
        assert pairs[1].weight == 1.0
        assert pairs[0].value == 1.0


class TestRelativeError:
    def test_scalar(self):
        assert relative_error(2.02, 2.0) == pytest.approx(0.01)

    def test_exact(self):
        assert relative_error(2.0, 2.0) == 0.0

    def test_nonfinite_estimate(self):
        assert relative_error(float("inf"), 2.0) == math.inf
        assert relative_error(float("nan"), 2.0) == math.inf

    def test_zero_truth_falls_back_to_absolute(self):
        assert relative_error(0.25, 0.0) == 0.25

    def test_vector_normalized_by_max_component(self):
        truth = np.array([10.0, 1e-12])
        est = np.array([10.0, 1e-12 + 1e-15])
        # error is 1e-15 / 10 under max-norm scaling, not 1e-3.
        assert relative_error(est, truth) == pytest.approx(1e-16, rel=0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_error(np.zeros(2), np.zeros(3))
