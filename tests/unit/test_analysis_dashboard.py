"""HTML dashboard assembly: self-contained output, drill-down, escaping."""

import json

import pytest

from repro.analysis.campaigns.dashboard import build_dashboard, write_dashboard
from repro.analysis.campaigns.loader import load_campaign
from repro.exceptions import ExperimentError
from tests.unit.test_analysis_figures import synthetic_campaign


@pytest.fixture()
def campaign(tmp_path):
    return synthetic_campaign(tmp_path)


class TestBuildDashboard:
    def test_self_contained_with_inline_figures(self, campaign):
        html_text = build_dashboard(campaign)
        assert html_text.startswith("<!DOCTYPE html>")
        # Inline SVG for every renderable registered figure, by anchor id.
        for name in ("churn-grid", "accuracy-vs-scale", "mass-drift-floor"):
            assert f'id="fig-{name}"' in html_text
        assert "<svg" in html_text
        # No external asset references — the file must travel alone.
        assert "<img" not in html_text
        assert "<script src" not in html_text
        assert "<link" not in html_text

    def test_unrenderable_figures_listed_with_reason(self, campaign):
        html_text = build_dashboard(
            campaign,
            figure_svgs={"churn-grid": "<svg></svg>"},
            figure_errors={"accuracy-vs-scale": "no finite values"},
        )
        assert 'id="fig-churn-grid"' in html_text
        assert "no finite values" in html_text

    def test_coverage_progress_alert_sections(self, campaign):
        html_text = build_dashboard(campaign)
        for token in (
            "Coverage &amp; progress",
            "expected cells",
            "anomaly alerts",
            "flight dumps",
            "ETA (remaining)",
            "Scenario summary",
            "Failures",
        ):
            assert token in html_text, token

    def test_html_escaping_of_record_content(self, campaign):
        # Error strings from failed cells flow into the failure table.
        frame = campaign.frame
        rows = [dict(r) for r in frame.rows()]
        rows[0]["status"] = "failed"
        rows[0]["error"] = "<script>alert('xss')</script>"
        from repro.analysis.campaigns.frame import Frame
        from repro.analysis.campaigns.loader import COLUMNS, CampaignData

        data = CampaignData(
            directory=campaign.directory,
            frame=Frame.from_records(rows, columns=COLUMNS),
            spec=campaign.spec,
            expected_cells=campaign.expected_cells,
            duplicates=0,
            skipped_lines=0,
        )
        html_text = build_dashboard(data)
        assert "<script>alert" not in html_text
        assert "&lt;script&gt;" in html_text


class TestWriteDashboard:
    def test_writes_from_directory(self, tmp_path):
        record = {
            "cell_id": "push_sum|hc-8|none|s0",
            "status": "ok",
            "algorithm": "push_sum",
            "topology": "hypercube-8",
            "fault": "none",
            "n": 8,
            "converged": True,
            "final_error": 1e-9,
            "flight_dumps": [str(tmp_path / "flight" / "dump.json")],
        }
        (tmp_path / "results.jsonl").write_text(json.dumps(record) + "\n")
        out = write_dashboard(tmp_path)
        assert out == tmp_path / "dashboard.html"
        text = out.read_text()
        # Flight-dump link is relative to the dashboard's own directory.
        assert 'href="flight/dump.json"' in text
        data = load_campaign(tmp_path)
        assert len(data.frame) == 1

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            write_dashboard(tmp_path / "nope")
