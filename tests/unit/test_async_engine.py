"""Unit tests for the asynchronous Poisson-clock engine."""

import numpy as np
import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.algorithms.registry import instantiate
from repro.exceptions import ConfigurationError
from repro.faults.events import FaultPlan, LinkFailure, NodeFailure
from repro.faults.message_loss import IidMessageLoss
from repro.metrics.errors import max_local_error
from repro.simulation.async_engine import AsynchronousEngine
from repro.topology import hypercube, ring
from tests.conftest import exact_average


def build_async(topology, algorithm, data, **kwargs):
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    algs = instantiate(algorithm, topology, initial)
    return AsynchronousEngine(topology, algs, **kwargs), algs


class TestBasics:
    def test_time_advances(self):
        topo = ring(6)
        engine, _ = build_async(topo, "push_sum", [1.0] * 6, seed=0)
        engine.run(5.0)
        assert engine.now <= 5.0 + 1e-9
        assert engine.activations > 0

    def test_until_time_in_past_rejected(self):
        topo = ring(4)
        engine, _ = build_async(topo, "push_sum", [1.0] * 4, seed=0)
        engine.run(2.0)
        with pytest.raises(ConfigurationError):
            engine.run(1.0)

    def test_negative_latency_rejected(self):
        topo = ring(4)
        initial = initial_mass_pairs(AggregateKind.AVERAGE, [1.0] * 4)
        algs = instantiate("push_sum", topo, initial)
        with pytest.raises(ConfigurationError):
            AsynchronousEngine(topo, algs, latency=-1.0)

    def test_deterministic_given_seed(self):
        topo = hypercube(3)
        data = list(np.random.default_rng(1).uniform(size=8))
        e1, a1 = build_async(topo, "push_flow", data, seed=9)
        e2, a2 = build_async(topo, "push_flow", data, seed=9)
        e1.run(30.0)
        e2.run(30.0)
        for x, y in zip(a1, a2):
            assert x.estimate() == y.estimate()

    def test_activation_rate_near_one_per_unit_time(self):
        topo = ring(10)
        engine, _ = build_async(topo, "push_sum", [1.0] * 10, seed=2)
        engine.run(50.0)
        # ~ n activations per unit time (Poisson rate 1 per node).
        assert 300 < engine.activations < 700


class TestConvergence:
    @pytest.mark.parametrize("algorithm", ["push_sum", "push_flow", "push_cancel_flow"])
    def test_converges_without_failures(self, algorithm):
        topo = hypercube(4)
        data = list(np.random.default_rng(3).uniform(size=topo.n))
        engine, _ = build_async(topo, algorithm, data, seed=4)
        engine.run(300.0)
        truth = exact_average(data)
        assert max_local_error(engine.estimates(), truth) < 1e-10

    def test_pf_converges_with_latency(self):
        # PF's flows are idempotent state snapshots: jittered latency (with
        # per-edge FIFO channels) cannot corrupt it.
        topo = hypercube(4)
        data = list(np.random.default_rng(5).uniform(size=topo.n))
        engine, _ = build_async(
            topo, "push_flow", data, seed=6, latency=0.2, latency_jitter=0.3
        )
        engine.run(600.0)
        truth = exact_average(data)
        assert max_local_error(engine.estimates(), truth) < 1e-9

    def test_pcf_converges_async_with_instant_delivery(self):
        # PCF under Poisson asynchrony with instantaneous delivery (the
        # standard gossip async model): no in-flight state, handshake safe.
        topo = hypercube(4)
        data = list(np.random.default_rng(5).uniform(size=topo.n))
        engine, _ = build_async(topo, "push_cancel_flow", data, seed=6)
        engine.run(400.0)
        truth = exact_average(data)
        assert max_local_error(engine.estimates(), truth) < 1e-10

    def test_pcf_handshake_limitation_under_latency_documented(self):
        # KNOWN LIMITATION (reproduction finding, see DESIGN.md): the
        # Fig. 5 role-adoption rule can race on stale in-flight messages
        # when links have latency — an edge can deadlock into a
        # mutual-ignore state (c mismatch with unequal eras) and mass then
        # drains into its flow variables. The paper's model (synchronous
        # rounds / instantaneous exchanges) never produces stale state, so
        # this is out of the paper's scope — but it is real, and this test
        # pins the phenomenon so any future hardening shows up as progress.
        topo = hypercube(4)
        data = list(np.random.default_rng(5).uniform(size=topo.n))
        engine, algs = build_async(
            topo, "push_cancel_flow", data, seed=6, latency=0.2, latency_jitter=0.3
        )
        engine.run(600.0)
        truth = exact_average(data)
        total_weight = sum(a.estimate_pair().weight for a in algs)
        # Mass visibly drained (weights should total ~n in a healthy run).
        assert total_weight < 0.5 * topo.n

    def test_flow_algorithms_survive_loss_async(self):
        topo = hypercube(4)
        data = list(np.random.default_rng(7).uniform(size=topo.n))
        engine, _ = build_async(
            topo,
            "push_cancel_flow",
            data,
            seed=8,
            message_fault=IidMessageLoss(0.3, seed=1),
        )
        engine.run(800.0)
        truth = exact_average(data)
        assert max_local_error(engine.estimates(), truth) < 1e-9


class TestAsyncFailures:
    def test_link_failure_handled(self):
        topo = ring(6)
        plan = FaultPlan(link_failures=[LinkFailure(round=5, u=0, v=1)])
        engine, algs = build_async(
            topo, "push_flow", [1.0] * 6, seed=0, fault_plan=plan
        )
        engine.run(20.0)
        assert 1 not in algs[0].neighbors
        assert 0 not in algs[1].neighbors

    def test_node_failure_silences(self):
        topo = ring(6)
        plan = FaultPlan(node_failures=[NodeFailure(round=5, node=3)])
        engine, algs = build_async(
            topo, "push_flow", [1.0] * 6, seed=0, fault_plan=plan
        )
        engine.run(30.0)
        assert engine.live_nodes() == [0, 1, 2, 4, 5]
        assert 3 not in algs[2].neighbors

    def test_stale_in_flight_message_after_handling_dropped(self):
        # With nonzero latency, a message can be in flight when the link is
        # excluded; delivery must be suppressed without a protocol error.
        topo = ring(6)
        plan = FaultPlan(link_failures=[LinkFailure(round=3, u=0, v=1)])
        engine, _ = build_async(
            topo,
            "push_cancel_flow",
            [1.0] * 6,
            seed=1,
            latency=1.0,
            fault_plan=plan,
        )
        engine.run(30.0)  # must not raise
