"""Unit tests for repro.util.float_bits."""

import math

import pytest

from repro.util.float_bits import bits_to_float, flip_bit, float_to_bits, ulp_distance


class TestRoundTrip:
    def test_roundtrip_simple(self):
        for x in [0.0, 1.0, -1.5, 3.141592653589793, 1e-300, 1e300]:
            assert bits_to_float(float_to_bits(x)) == x

    def test_roundtrip_negative_zero(self):
        bits = float_to_bits(-0.0)
        assert bits == 1 << 63
        assert math.copysign(1.0, bits_to_float(bits)) == -1.0

    def test_bits_out_of_range(self):
        with pytest.raises(ValueError):
            bits_to_float(-1)
        with pytest.raises(ValueError):
            bits_to_float(1 << 64)


class TestFlipBit:
    def test_flip_is_involution(self):
        x = 42.125
        for bit in range(64):
            flipped = flip_bit(x, bit)
            assert flip_bit(flipped, bit) == x

    def test_flip_sign_bit(self):
        assert flip_bit(1.0, 63) == -1.0

    def test_flip_changes_value(self):
        x = 1.0
        for bit in range(64):
            assert flip_bit(x, bit) != x or math.isnan(flip_bit(x, bit))

    def test_flip_lsb_is_one_ulp(self):
        x = 1.5
        assert ulp_distance(x, flip_bit(x, 0)) == 1

    def test_flip_can_produce_nan_or_inf(self):
        # Setting all exponent bits of 1.0 gives inf or nan; flipping a
        # high exponent bit of a large number can overflow to inf.
        x = 1.7976931348623157e308  # max double
        flipped = flip_bit(x, 62)
        assert math.isfinite(x)
        assert flipped != x

    def test_bad_bit_index(self):
        with pytest.raises(ValueError):
            flip_bit(1.0, 64)
        with pytest.raises(ValueError):
            flip_bit(1.0, -1)


class TestUlpDistance:
    def test_zero_distance(self):
        assert ulp_distance(1.0, 1.0) == 0

    def test_adjacent(self):
        import numpy as np

        x = 1.0
        assert ulp_distance(x, float(np.nextafter(x, 2.0))) == 1

    def test_across_zero(self):
        tiny = 5e-324  # smallest subnormal
        assert ulp_distance(-tiny, tiny) == 2

    def test_symmetric(self):
        assert ulp_distance(1.0, 2.0) == ulp_distance(2.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ulp_distance(float("nan"), 1.0)
