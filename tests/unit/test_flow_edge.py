"""White-box tests of the PCF per-edge handshake (Fig. 5 lines 6-29).

Drives a pair of :class:`PCFEdgeState` machines through explicit message
sequences, checking the cancel -> swap -> adopt cycle, the repair path, and
the races the counters must absorb.
"""

import numpy as np

from repro.algorithms.flow_edge import PCFEdgeState, PCFPayload
from repro.algorithms.state import MassPair, zero_pair


def zero():
    return MassPair(0.0, 0.0)


def exchange(src: PCFEdgeState, dst: PCFEdgeState):
    """Deliver src's current payload to dst; returns the ReceiveEffect."""
    return dst.receive(src.payload())


class TestInitialState:
    def test_fresh_edge(self):
        edge = PCFEdgeState(zero())
        assert edge.active == 0
        assert edge.era == 0
        assert edge.flow(0).is_zero()
        assert edge.flow(1).is_zero()
        assert edge.total_flow().is_zero()


class TestActiveFlowPF:
    def test_add_to_active(self):
        edge = PCFEdgeState(zero())
        edge.add_to_active(MassPair(1.5, 0.5))
        assert edge.active_flow().value == 1.5
        assert edge.passive_flow().is_zero()

    def test_receive_repairs_active(self):
        a, b = PCFEdgeState(zero()), PCFEdgeState(zero())
        a.add_to_active(MassPair(2.0, 1.0))
        effect = exchange(a, b)
        assert b.active_flow().value == -2.0
        # The efficient-phi delta equals -(old + received) = -(0 + 2) = -2.
        assert effect.phi_delta_efficient.value == -2.0
        # An all-zero passive pair is trivially conserved, so the first
        # exchange already performs a (no-op) cancellation.
        assert effect.cancelled and not effect.swapped
        assert effect.phi_delta_robust.is_zero()


class TestHandshakeCycle:
    def test_full_cancel_swap_adopt_cycle(self):
        a, b = PCFEdgeState(zero()), PCFEdgeState(zero())

        # Era 0: some activity on the active slot (slot 0).
        a.add_to_active(MassPair(2.0, 1.0))

        # b's passive (all-zero) is trivially conserved -> cancel at b.
        effect = exchange(a, b)
        assert effect.cancelled
        assert b.era == 1

        # a sees b's passive zero with b's era one ahead -> swap at a.
        effect = exchange(b, a)
        assert effect.swapped
        assert a.era == 1
        assert a.active == 1

        # b adopts a's new role assignment on the next receive; in the same
        # message it observes the old (value-bearing) pair conserved and
        # cancels it, entering era 2.
        effect = exchange(a, b)
        assert effect.adopted
        assert b.active == 1
        assert effect.cancelled
        assert b.era == 2
        assert b.flow(0).is_zero()

    def test_value_bearing_cancellation_absorbs_exact_value(self):
        a, b = PCFEdgeState(zero()), PCFEdgeState(zero())
        a.add_to_active(MassPair(4.0, 2.0))
        exchange(a, b)  # b repairs slot 0 to -4, trivially cancels passive
        exchange(b, a)  # a swaps: slot 1 becomes active; slot 0 holds +4
        assert a.flow(0).value == 4.0
        assert b.flow(0).value == -4.0
        # b adopts the swap and cancels the value-bearing pair.
        effect = exchange(a, b)
        assert effect.cancelled
        assert b.flow(0).is_zero()
        # The robust-phi delta carries the absorbed value (b's copy, -4).
        assert effect.phi_delta_robust.value == -4.0
        # a cancels its +4 copy symmetrically on the next receive.
        effect = exchange(b, a)
        assert effect.cancelled or effect.swapped
        assert a.flow(0).is_zero()

    def test_era_skew_never_exceeds_one(self):
        rng = np.random.default_rng(0)
        a, b = PCFEdgeState(zero()), PCFEdgeState(zero())
        for _ in range(200):
            src, dst = (a, b) if rng.random() < 0.5 else (b, a)
            src.add_to_active(MassPair(float(rng.uniform(-1, 1)), 1.0))
            exchange(src, dst)
            assert abs(a.era - b.era) <= 1

    def test_simultaneous_cancel_race_resolves(self):
        # Both ends observe conservation and cancel before hearing from the
        # other; the era counters absorb the race without deadlock.
        a, b = PCFEdgeState(zero()), PCFEdgeState(zero())
        payload_a = a.payload()
        payload_b = b.payload()
        effect_a = a.receive(payload_b)
        effect_b = b.receive(payload_a)
        assert effect_a.cancelled and effect_b.cancelled
        assert a.era == b.era == 1
        # Continue exchanging: with all-zero flows the handshake cycles
        # harmlessly (cancel/swap/adopt no-ops); the counters never skew by
        # more than one and the flows stay zero.
        for _ in range(4):
            exchange(a, b)
            exchange(b, a)
            assert abs(a.era - b.era) <= 1
        assert a.total_flow().is_zero()
        assert b.total_flow().is_zero()
        # Real mass added after the race still flows correctly.
        a.add_to_active(MassPair(2.0, 1.0))
        exchange(a, b)
        sent_slot = a.active
        assert b.flow(sent_slot).value == -2.0 or b.flow(1 - sent_slot).value == -2.0


class TestRepairPath:
    def test_passive_repair_after_corruption(self):
        a, b = PCFEdgeState(zero()), PCFEdgeState(zero())
        # Move real value into the passive slot via a full cycle.
        a.add_to_active(MassPair(4.0, 2.0))
        exchange(a, b)
        exchange(b, a)
        exchange(a, b)
        exchange(b, a)
        # Corrupt a's passive copy.
        a.inject_flow_bit_flip(0, 30)
        corrupted = a.flow(0)
        assert not corrupted.exactly_equals(MassPair(4.0, 2.0))
        # Receive from b: conservation fails -> repair branch restores it.
        exchange(b, a)
        assert a.flow(0).exactly_equals(-b.flow(0))

    def test_stale_peer_does_not_resurrect_cancelled_flow(self):
        a, b = PCFEdgeState(zero()), PCFEdgeState(zero())
        a.add_to_active(MassPair(4.0, 2.0))
        stale_payload = a.payload()  # b's view before the handshake advanced
        exchange(a, b)
        exchange(b, a)  # cancel at a -> era 1
        # Deliver a *stale* message (era 0) to a; its era guard must
        # prevent both cancellation and repair regressions.
        era_before = a.era
        a.receive(stale_payload)
        assert a.era == era_before


class TestPayload:
    def test_payload_roundtrip_fields(self):
        edge = PCFEdgeState(zero())
        edge.add_to_active(MassPair(1.0, 2.0))
        payload = edge.payload()
        assert isinstance(payload, PCFPayload)
        assert payload.active == edge.active
        assert payload.era == edge.era
        assert payload.flow_a.value == 1.0

    def test_payload_is_snapshot(self):
        edge = PCFEdgeState(zero())
        payload = edge.payload()
        edge.add_to_active(MassPair(1.0, 1.0))
        assert payload.flow_a.is_zero()  # unchanged by later mutation

    def test_vector_edges(self):
        edge = PCFEdgeState(zero_pair(3))
        edge.add_to_active(MassPair(np.array([1.0, 2.0, 3.0]), 1.0))
        np.testing.assert_array_equal(edge.active_flow().value, [1.0, 2.0, 3.0])

    def test_max_magnitude(self):
        edge = PCFEdgeState(zero())
        edge.add_to_active(MassPair(-3.0, 1.0))
        assert edge.max_magnitude() == 3.0
