"""Declarative fault-schedule specs: validation, naming, instantiation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    DYNAMIC_FAULT_KINDS,
    FAULT_KINDS,
    BurstMessageLoss,
    CompositeFault,
    IidMessageLoss,
    StateBitFlipInjector,
    build_faults,
    build_topology_schedule,
    validate_fault_against_topology,
    validate_fault_spec,
)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            validate_fault_spec({"kind": "gamma_ray"})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="table/dict"):
            validate_fault_spec(["message_loss"])

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            validate_fault_spec({"kind": "message_loss", "rate": 0.1, "prob": 0.2})

    def test_missing_required_key_rejected(self):
        with pytest.raises(ConfigurationError, match="missing required"):
            validate_fault_spec({"kind": "link_failure"})

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="rate"):
            validate_fault_spec({"kind": "message_loss", "rate": 1.5})

    def test_bad_edge_rejected(self):
        with pytest.raises(ConfigurationError, match="edge"):
            validate_fault_spec(
                {"kind": "link_failure", "round": 10, "edge": [0, 1, 2]}
            )

    def test_empty_state_flip_rounds_rejected(self):
        with pytest.raises(ConfigurationError, match="rounds"):
            validate_fault_spec({"kind": "state_flip", "rounds": []})

    def test_where_prefix_in_message(self):
        with pytest.raises(ConfigurationError, match="faults\\[3\\]"):
            validate_fault_spec({"kind": "nope"}, where="faults[3]")

    def test_every_kind_has_a_valid_minimal_spec(self):
        minimal = {
            "none": {},
            "message_loss": {"rate": 0.1},
            "burst_loss": {"p_gb": 0.1, "p_bg": 0.5},
            "bit_flip": {"rate": 0.01},
            "link_failure": {"round": 10},
            "node_failure": {"round": 10, "node": 3},
            "state_flip": {"rounds": [5]},
            "churn": {"rate": 0.1},
            "partition": {"round": 10},
            "regional_outage": {"round": 10, "duration": 5},
            "trace": {"path": "recorded.jsonl"},
        }
        assert set(minimal) == set(FAULT_KINDS)
        for kind, params in minimal.items():
            normalized = validate_fault_spec({"kind": kind, **params})
            assert normalized["name"]


class TestSpecRanges:
    def test_negative_round_rejected(self):
        for spec in (
            {"kind": "link_failure", "round": -1},
            {"kind": "node_failure", "round": -5, "node": 0},
            {"kind": "partition", "round": -2},
            {"kind": "regional_outage", "round": -1, "duration": 5},
        ):
            with pytest.raises(ConfigurationError, match="round must be >= 0"):
                validate_fault_spec(spec)

    def test_node_failure_outside_topology_rejected(self):
        with pytest.raises(ConfigurationError, match="outside the"):
            validate_fault_against_topology(
                {"kind": "node_failure", "round": 10, "node": 16}, 16
            )
        validate_fault_against_topology(
            {"kind": "node_failure", "round": 10, "node": 15}, 16
        )

    def test_link_failure_edge_outside_topology_rejected(self):
        with pytest.raises(ConfigurationError, match="outside the"):
            validate_fault_against_topology(
                {"kind": "link_failure", "round": 10, "edge": [0, 16]}, 16
            )

    def test_churn_event_node_outside_topology_rejected(self):
        with pytest.raises(ConfigurationError, match="outside"):
            validate_fault_against_topology(
                {"kind": "churn", "events": [[5, "leave", 99]]}, 16
            )

    def test_composed_parts_are_range_checked(self):
        spec = {
            "compose": [
                {"kind": "message_loss", "rate": 0.1},
                {"kind": "node_failure", "round": 10, "node": 40},
            ]
        }
        with pytest.raises(ConfigurationError, match="outside the"):
            validate_fault_against_topology(spec, 32)

    def test_region_count_larger_than_topology_rejected(self):
        with pytest.raises(ConfigurationError, match="region_count"):
            validate_fault_against_topology(
                {
                    "kind": "regional_outage",
                    "round": 10,
                    "duration": 5,
                    "region_count": 8,
                },
                4,
            )


class TestSeedDerivation:
    def test_part_seeds_are_seedsequence_spawned(self):
        import numpy as np

        from repro.faults.specs import _part_seeds

        seeds = _part_seeds(42, 3)
        children = np.random.SeedSequence(42).spawn(3)
        assert seeds == [int(c.generate_state(1)[0]) for c in children]
        assert len(set(seeds)) == 3
        assert _part_seeds(42, 3) == seeds  # pure function of the seed

    def test_composed_identical_parts_get_independent_streams(self):
        from repro.simulation.messages import Message

        spec = {
            "compose": [
                {"kind": "message_loss", "rate": 0.5},
                {"kind": "message_loss", "rate": 0.5},
            ]
        }
        built = build_faults(spec, seed=11)
        part_a, part_b = built.message_fault._faults
        messages = [
            Message(sender=0, receiver=1, round=r, payload=None)
            for r in range(200)
        ]
        drops_a = [part_a.apply(m) is None for m in messages]
        part_a.reset()
        drops_b = [part_b.apply(m) is None for m in messages]
        assert drops_a != drops_b


class TestDynamicKinds:
    def test_dynamic_kinds_build_topology_schedules(self):
        from repro.topology import hypercube

        topo = hypercube(4)
        for spec in (
            {"kind": "churn", "rate": 0.1, "end": 50},
            {"kind": "partition", "round": 10, "heal_round": 30},
            {"kind": "regional_outage", "round": 10, "duration": 5},
        ):
            assert spec["kind"] in DYNAMIC_FAULT_KINDS
            built = build_faults(spec, seed=3, topology=topo)
            assert built.topology_schedule is not None
            assert not built.topology_schedule.is_empty()
            assert built.dynamics_meta["deltas"] > 0
            # build_topology_schedule is the batched path's shortcut and
            # must agree exactly with the full build.
            schedule = build_topology_schedule(spec, topology=topo, seed=3)
            assert schedule.deltas == built.topology_schedule.deltas

    def test_rate_churn_without_end_needs_horizon(self):
        from repro.topology import hypercube

        spec = {"kind": "churn", "rate": 0.1}
        with pytest.raises(ConfigurationError, match="horizon"):
            build_faults(spec, topology=hypercube(4))
        built = build_faults(spec, topology=hypercube(4), horizon=40)
        assert built.topology_schedule.last_round <= 40

    def test_static_kinds_have_no_schedule(self):
        built = build_faults({"kind": "message_loss", "rate": 0.1}, seed=1)
        assert built.topology_schedule is None
        assert built.dynamics_meta is None


class TestNaming:
    def test_derived_names(self):
        assert validate_fault_spec({"kind": "none"})["name"] == "none"
        assert (
            validate_fault_spec({"kind": "message_loss", "rate": 0.05})["name"]
            == "loss0.05"
        )
        assert (
            validate_fault_spec({"kind": "link_failure", "round": 75})["name"]
            == "link(0,1)@75"
        )

    def test_explicit_name_wins(self):
        spec = {"kind": "message_loss", "rate": 0.05, "name": "lossy"}
        assert validate_fault_spec(spec)["name"] == "lossy"

    def test_composed_name_joins_parts(self):
        spec = {
            "compose": [
                {"kind": "message_loss", "rate": 0.1},
                {"kind": "link_failure", "round": 20},
            ]
        }
        assert validate_fault_spec(spec)["name"] == "loss0.1+link(0,1)@20"

    def test_compose_rejects_extra_keys_and_empty_list(self):
        with pytest.raises(ConfigurationError, match="compose"):
            validate_fault_spec({"compose": []})
        with pytest.raises(ConfigurationError, match="extra key"):
            validate_fault_spec({"compose": [{"kind": "none"}], "rate": 0.1})


class TestBuild:
    def test_none_builds_empty_schedule(self):
        built = build_faults({"kind": "none"})
        assert built.message_fault is None
        assert built.observers == []
        assert built.event_round is None
        assert not built.fault_plan.link_failures
        assert not built.fault_plan.node_failures

    def test_message_loss_builds_iid_fault(self):
        built = build_faults({"kind": "message_loss", "rate": 0.2}, seed=7)
        assert isinstance(built.message_fault, IidMessageLoss)

    def test_link_failure_sets_event_round(self):
        built = build_faults(
            {"kind": "link_failure", "round": 30, "detection_delay": 5}
        )
        (lf,) = built.fault_plan.link_failures
        assert lf.round == 30
        assert built.event_round == lf.handle_round == 35

    def test_state_flip_builds_observer(self):
        built = build_faults({"kind": "state_flip", "rounds": [10, 20]})
        assert len(built.observers) == 1
        assert isinstance(built.observers[0], StateBitFlipInjector)

    def test_compose_merges_message_faults_and_event_round(self):
        built = build_faults(
            {
                "compose": [
                    {"kind": "message_loss", "rate": 0.1},
                    {"kind": "burst_loss", "p_gb": 0.05, "p_bg": 0.5},
                    {"kind": "link_failure", "round": 40},
                    {"kind": "node_failure", "round": 25, "node": 2},
                ]
            }
        )
        assert isinstance(built.message_fault, CompositeFault)
        assert built.event_round == 25  # earliest handling round wins

    def test_single_burst_not_wrapped_in_composite(self):
        built = build_faults({"kind": "burst_loss", "p_gb": 0.1, "p_bg": 0.5})
        assert isinstance(built.message_fault, BurstMessageLoss)

    def test_same_seed_same_fault_timeline(self):
        from repro.simulation.messages import Message

        spec = {"kind": "message_loss", "rate": 0.5}
        a = build_faults(spec, seed=3).message_fault
        b = build_faults(spec, seed=3).message_fault
        messages = [
            Message(sender=0, receiver=1, round=r, payload=None)
            for r in range(50)
        ]
        drops_a = [a.apply(m) is None for m in messages]
        drops_b = [b.apply(m) is None for m in messages]
        assert drops_a == drops_b
        assert any(drops_a) and not all(drops_a)
