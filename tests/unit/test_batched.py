"""Unit tests for the batched whole-array executor.

The load-bearing property is *bit-for-bit* parity: stacking R runs into
one disjoint-union program must produce, for every run, exactly the
floating-point trajectory the single-run vectorized engine produces —
same schedule draws, same loss draws, same ``np.add.at`` accumulation
order. Everything else (retirement, link failures, the batch observers)
layers on top of that invariant.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.faults.events import LinkFailure
from repro.simulation.observers import Observer
from repro.simulation.schedule import UniformGossipSchedule
from repro.topology import hypercube, ring
from repro.vectorized.batched import (
    BatchedEngine,
    BatchedErrorHistory,
    BatchedMassProbe,
    BatchedRun,
)
from repro.vectorized.engines import VectorPushSum
from repro.vectorized.parity import materialize_schedule, vector_engine_for
from repro.vectorized.topology_arrays import TopologyArrays

ALGORITHMS = [
    "push_sum",
    "push_flow",
    "push_cancel_flow",
    "push_cancel_flow_hardened",
]


def _batch_data(topo, count, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(size=(count, topo.n))


class TestScriptedParity:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_batched_matches_single_runs_bit_for_bit(self, algorithm):
        topo = hypercube(3)
        rounds = 40
        data = _batch_data(topo, 3, seed=3)
        schedules = [
            materialize_schedule(
                UniformGossipSchedule(topo.n, r), topo, rounds
            )
            for r in range(3)
        ]
        batch = BatchedEngine(
            algorithm,
            [
                BatchedRun(
                    topology=topo,
                    values=data[r],
                    weights=np.ones(topo.n),
                    targets=schedules[r],
                )
                for r in range(3)
            ],
        )
        batch.run(rounds)
        for r in range(3):
            single = vector_engine_for(algorithm)(
                topo, data[r], np.ones(topo.n), targets=schedules[r]
            )
            single.run(rounds)
            assert np.array_equal(batch.estimates()[r], single.estimates())

    def test_scripted_schedule_exhaustion(self):
        topo = ring(4)
        targets = np.array([[1, 2, 3, 0]])
        batch = BatchedEngine(
            "push_sum",
            [
                BatchedRun(
                    topology=topo,
                    values=np.ones(4),
                    weights=np.ones(4),
                    targets=targets,
                )
            ],
        )
        batch.step()
        with pytest.raises(ConfigurationError, match="exhausted"):
            batch.step()


class TestNativeParity:
    def test_native_schedule_with_loss_matches_single_runs(self):
        # Same SeedSequence child => same stream, whether the run executes
        # alone or inside a batch; message counters must agree too.
        topo = hypercube(3)
        rounds = 60
        data = _batch_data(topo, 3, seed=1)
        children = np.random.SeedSequence(11).spawn(3)
        batch = BatchedEngine(
            "push_flow",
            [
                BatchedRun(
                    topology=topo,
                    values=data[r],
                    weights=np.ones(topo.n),
                    rng=np.random.default_rng(children[r]),
                    loss_probability=0.2,
                )
                for r in range(3)
            ],
        )
        batch.run(rounds)
        for r in range(3):
            single = vector_engine_for("push_flow")(
                topo,
                data[r],
                np.ones(topo.n),
                seed=np.random.default_rng(children[r]),
                loss_probability=0.2,
            )
            single.run(rounds)
            assert np.array_equal(batch.estimates()[r], single.estimates())
            assert batch.messages_sent[r] == single.messages_sent
            assert batch.messages_delivered[r] == single.messages_delivered

    def test_runs_are_independent(self):
        # Changing one run's seed must not perturb its batch-mates.
        topo = hypercube(3)
        data = _batch_data(topo, 2, seed=2)

        def estimates_with_first_seed(seed):
            batch = BatchedEngine(
                "push_cancel_flow",
                [
                    BatchedRun(
                        topology=topo,
                        values=data[0],
                        weights=np.ones(topo.n),
                        rng=seed,
                    ),
                    BatchedRun(
                        topology=topo,
                        values=data[1],
                        weights=np.ones(topo.n),
                        rng=7,
                    ),
                ],
            )
            batch.run(30)
            return batch.estimates()

        a = estimates_with_first_seed(1)
        b = estimates_with_first_seed(2)
        assert not np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])


class TestRetirement:
    def test_retired_run_freezes_while_batch_continues(self):
        topo = hypercube(3)
        data = _batch_data(topo, 2, seed=5)
        batch = BatchedEngine(
            "push_flow",
            [
                BatchedRun(
                    topology=topo,
                    values=data[r],
                    weights=np.ones(topo.n),
                    rng=r,
                )
                for r in range(2)
            ],
        )

        def stop(engine, round_index):
            return np.array([round_index >= 9, False])

        executed = batch.run(30, stop_when=stop)
        assert executed.tolist() == [10, 30]
        frozen = batch.estimates()[0].copy()
        sent = int(batch.messages_sent[0])
        batch.run(5)
        assert np.array_equal(batch.estimates()[0], frozen)
        assert batch.messages_sent[0] == sent
        assert batch.run_rounds.tolist() == [10, 35]

    def test_all_retired_ends_run_early(self):
        topo = ring(4)
        batch = BatchedEngine(
            "push_sum",
            [
                BatchedRun(
                    topology=topo,
                    values=np.ones(4),
                    weights=np.ones(4),
                    rng=0,
                )
            ],
        )
        executed = batch.run(
            100, stop_when=lambda eng, r: np.array([r >= 9])
        )
        assert executed.tolist() == [10]
        assert batch.round == 10

    def test_stop_checked_at_horizon_despite_check_every(self):
        # 10 % 3 != 0: the horizon round must still be consulted, or a
        # run converging in the last rounds would be misreported.
        topo = ring(4)
        batch = BatchedEngine(
            "push_sum",
            [
                BatchedRun(
                    topology=topo,
                    values=np.ones(4),
                    weights=np.ones(4),
                    rng=0,
                )
            ],
        )
        seen = []

        def stop(engine, round_index):
            seen.append(round_index)
            return None

        batch.run(10, stop_when=stop, check_every=3)
        assert seen == [2, 5, 8, 9]

    def test_bad_retire_mask_shape_rejected(self):
        topo = ring(4)
        batch = BatchedEngine(
            "push_sum",
            [
                BatchedRun(
                    topology=topo, values=np.ones(4), weights=np.ones(4)
                )
            ],
        )
        with pytest.raises(ConfigurationError, match="retirement mask"):
            batch.retire(np.zeros(3, dtype=bool))


class TestSingleEngineStopCondition:
    def test_horizon_checked_when_not_multiple_of_check_every(self):
        engine = VectorPushSum(ring(4), np.ones(4), np.ones(4), seed=0)
        seen = []

        def stop(eng, round_index):
            seen.append(round_index)
            return False

        engine.run(10, stop_when=stop, check_every=3)
        assert seen == [2, 5, 8, 9]

    def test_zero_round_run_with_observer_flushes_nothing(self):
        calls = []

        class Recorder(Observer):
            def on_round_messages(self, engine, round_index, sent, delivered):
                calls.append(("messages", round_index))

            def on_run_end(self, engine, executed):
                calls.append(("end", executed))

        engine = VectorPushSum(
            ring(4), np.ones(4), np.ones(4), seed=0, observers=[Recorder()]
        )
        assert engine.run(0) == 0
        assert calls == [("end", 0)]


class TestSlotLookup:
    def test_every_neighbor_pair_resolves_to_its_slot(self):
        topo = hypercube(3)
        arrays = TopologyArrays.from_topology(topo)
        engine = VectorPushSum(topo, np.ones(topo.n), np.ones(topo.n))
        senders, targets = [], []
        for i in range(topo.n):
            for s in range(arrays.degree[i]):
                senders.append(i)
                targets.append(int(arrays.nbr[i, s]))
        slots = engine._slots_for_targets(
            np.array(senders), np.array(targets)
        )
        assert (arrays.nbr[senders, slots] == targets).all()

    def test_non_neighbor_target_message(self):
        engine = VectorPushSum(ring(4), np.ones(4), np.ones(4))
        with pytest.raises(
            ConfigurationError,
            match=r"scripted target 2 is not a neighbor of 0",
        ):
            engine._slots_for_targets(np.array([0]), np.array([2]))

    def test_out_of_range_targets_rejected(self):
        engine = VectorPushSum(ring(4), np.ones(4), np.ones(4))
        for bad in (9, -1):
            with pytest.raises(ConfigurationError, match="not a neighbor"):
                engine._slots_for_targets(np.array([1]), np.array([bad]))


class TestLinkFailures:
    @staticmethod
    def _failed_batch(algorithm, fail_round):
        topo = hypercube(4)
        data = _batch_data(topo, 2, seed=9)
        runs = [
            BatchedRun(
                topology=topo,
                values=data[r],
                weights=np.ones(topo.n),
                rng=r,
                link_failures=(LinkFailure(round=fail_round, u=0, v=1),),
            )
            for r in range(2)
        ]
        batch = BatchedEngine(algorithm, runs)
        history = BatchedErrorHistory(data.mean(axis=1))
        mass = BatchedMassProbe()
        mass.start(batch)

        def on_round(engine, round_index):
            history.on_round_end(engine, round_index)
            mass.on_round_end(engine, round_index)

        batch.run(300, on_round=on_round)
        return batch, history, mass

    def test_push_flow_still_reaches_truth_after_handled_failure(self):
        batch, history, mass = self._failed_batch("push_flow", 10)
        assert (history.current_max_errors() < 1e-9).all()
        # Discarded edge state registers as drift and is flagged.
        for r in range(2):
            assert mass.violations[r] > 0
            assert mass.worst_drift(r) > 1e-6

    @pytest.mark.parametrize(
        "algorithm", ["push_flow", "push_cancel_flow"]
    )
    def test_consensus_after_handled_failure(self, algorithm):
        # A failure handled long before convergence discards in-flight
        # mass, so the agreed value may be offset from the original truth
        # (the paper's semantics) — but every node must still agree.
        batch, history, mass = self._failed_batch(algorithm, 10)
        est = batch.estimates()[:, :, 0]
        spread = est.max(axis=1) - est.min(axis=1)
        assert (spread < 1e-9).all()
        assert np.isfinite(history.current_max_errors()).all()

    def test_detection_delay_defers_handling(self):
        topo = hypercube(3)
        data = _batch_data(topo, 1, seed=4)
        batch = BatchedEngine(
            "push_flow",
            [
                BatchedRun(
                    topology=topo,
                    values=data[0],
                    weights=np.ones(topo.n),
                    rng=0,
                    link_failures=(
                        LinkFailure(round=5, u=0, v=1, detection_delay=10),
                    ),
                )
            ],
        )
        batch.run(200)
        # Messages sent on the dead link between fail and handling vanish.
        assert batch.messages_delivered[0] < batch.messages_sent[0]

    def test_non_edge_failure_rejected(self):
        topo = hypercube(3)  # 0 and 3 differ in two bits: not adjacent
        with pytest.raises(ConfigurationError, match="not an .*edge"):
            BatchedEngine(
                "push_flow",
                [
                    BatchedRun(
                        topology=topo,
                        values=np.ones(topo.n),
                        weights=np.ones(topo.n),
                        link_failures=(LinkFailure(round=5, u=0, v=3),),
                    )
                ],
            )

    def test_duplicate_edge_failure_rejected(self):
        topo = ring(4)
        with pytest.raises(ConfigurationError, match="duplicate"):
            BatchedEngine(
                "push_flow",
                [
                    BatchedRun(
                        topology=topo,
                        values=np.ones(4),
                        weights=np.ones(4),
                        link_failures=(
                            LinkFailure(round=5, u=0, v=1),
                            LinkFailure(round=9, u=1, v=0),
                        ),
                    )
                ],
            )


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one run"):
            BatchedEngine("push_sum", [])

    def test_mismatched_node_counts_rejected(self):
        runs = [
            BatchedRun(
                topology=ring(4), values=np.ones(4), weights=np.ones(4)
            ),
            BatchedRun(
                topology=ring(5), values=np.ones(5), weights=np.ones(5)
            ),
        ]
        with pytest.raises(ConfigurationError, match="share the node count"):
            BatchedEngine("push_sum", runs)

    def test_mismatched_dimensions_rejected(self):
        runs = [
            BatchedRun(
                topology=ring(4),
                values=np.ones((4, 2)),
                weights=np.ones(4),
            ),
            BatchedRun(
                topology=ring(4), values=np.ones(4), weights=np.ones(4)
            ),
        ]
        with pytest.raises(ConfigurationError, match="dimension"):
            BatchedEngine("push_sum", runs)

    def test_bad_loss_probability_rejected(self):
        runs = [
            BatchedRun(
                topology=ring(4),
                values=np.ones(4),
                weights=np.ones(4),
                loss_probability=1.5,
            )
        ]
        with pytest.raises(ConfigurationError, match="loss_probability"):
            BatchedEngine("push_sum", runs)

    def test_bad_targets_shape_rejected(self):
        runs = [
            BatchedRun(
                topology=ring(4),
                values=np.ones(4),
                weights=np.ones(4),
                targets=np.zeros((3, 5), dtype=np.int64),
            )
        ]
        with pytest.raises(ConfigurationError, match="scripted targets"):
            BatchedEngine("push_sum", runs)

    def test_negative_max_rounds_rejected(self):
        batch = BatchedEngine(
            "push_sum",
            [
                BatchedRun(
                    topology=ring(4), values=np.ones(4), weights=np.ones(4)
                )
            ],
        )
        with pytest.raises(ConfigurationError, match="max_rounds"):
            batch.run(-1)


class TestBatchObservers:
    def test_error_history_semantics(self):
        history = BatchedErrorHistory([0.0, 2.0])
        assert np.isinf(history.current_max_errors()).all()
        # Zero truth falls back to absolute error (scale 1.0).
        assert history._scale.tolist() == [1.0, 2.0]

    def test_error_history_tracks_convergence_round(self):
        topo = hypercube(3)
        data = _batch_data(topo, 2, seed=8)
        batch = BatchedEngine(
            "push_sum",
            [
                BatchedRun(
                    topology=topo,
                    values=data[r],
                    weights=np.ones(topo.n),
                    rng=r,
                )
                for r in range(2)
            ],
        )
        history = BatchedErrorHistory(data.mean(axis=1))
        batch.run(200, on_round=history.on_round_end)
        for r in range(2):
            below = history.first_round_below(r, 1e-9)
            assert below is not None
            assert history.max_errors[r][below] <= 1e-9
            assert history.final_max_error(r) <= 1e-9

    def test_mass_probe_counts_violations(self):
        topo = hypercube(3)
        data = _batch_data(topo, 1, seed=6)
        batch = BatchedEngine(
            "push_flow",
            [
                BatchedRun(
                    topology=topo,
                    values=data[0],
                    weights=np.ones(topo.n),
                    rng=0,
                    link_failures=(
                        LinkFailure(round=5, u=0, v=1, detection_delay=20),
                    ),
                )
            ],
        )
        mass = BatchedMassProbe(tolerance=1e-6)
        mass.start(batch)
        batch.run(60, on_round=mass.on_round_end)
        # While the dead link swallowed mass, drift exceeded tolerance.
        assert mass.violations[0] > 0
        assert mass.worst_drift(0) > 1e-6


class TestPerRunCaps:
    def test_capped_runs_freeze_at_their_budget(self):
        # Heterogeneous per-run round budgets in one batch: each run must
        # retire exactly at its own cap while uncapped mates keep going.
        topo = hypercube(3)
        data = _batch_data(topo, 3, seed=9)
        caps = [5, 10, None]
        batch = BatchedEngine(
            "push_flow",
            [
                BatchedRun(
                    topology=topo,
                    values=data[r],
                    weights=np.ones(topo.n),
                    rng=r,
                    max_rounds=caps[r],
                )
                for r in range(3)
            ],
        )
        batch.run(20)
        assert batch.run_rounds.tolist() == [5, 10, 20]

    def test_capped_run_matches_single_engine_bit_for_bit(self):
        # A run capped at k inside a batch must freeze on exactly the
        # state a lone vectorized engine reaches after k rounds.
        topo = hypercube(3)
        data = _batch_data(topo, 2, seed=10)
        batch = BatchedEngine(
            "push_cancel_flow",
            [
                BatchedRun(
                    topology=topo,
                    values=data[r],
                    weights=np.ones(topo.n),
                    rng=17 + r,
                    max_rounds=5 if r == 0 else None,
                )
                for r in range(2)
            ],
        )
        batch.run(40)
        single = vector_engine_for("push_cancel_flow")(
            topo, data[0], np.ones(topo.n), seed=17
        )
        single.run(5)
        assert np.array_equal(batch.estimates()[0], single.estimates())
        assert batch.messages_sent[0] == single.messages_sent

    def test_zero_cap_retired_before_any_step(self):
        topo = ring(4)
        values = np.arange(4.0)
        batch = BatchedEngine(
            "push_sum",
            [
                BatchedRun(
                    topology=topo,
                    values=values,
                    weights=np.ones(4),
                    rng=0,
                    max_rounds=0,
                ),
                BatchedRun(
                    topology=topo,
                    values=values,
                    weights=np.ones(4),
                    rng=0,
                ),
            ],
        )
        batch.run(10)
        assert batch.run_rounds.tolist() == [0, 10]
        assert batch.messages_sent[0] == 0
        assert np.array_equal(batch.estimates()[0].ravel(), values)

    def test_capped_run_still_gets_final_stop_check(self):
        # The cap retires a run *after* the round's stop check, so a
        # stop_when firing on the cap round still registers for it.
        topo = ring(4)
        seen = []

        def stop(engine, round_index):
            seen.append(engine.last_round_active.copy())
            return np.zeros(2, dtype=bool)

        batch = BatchedEngine(
            "push_sum",
            [
                BatchedRun(
                    topology=topo,
                    values=np.ones(4),
                    weights=np.ones(4),
                    rng=r,
                    max_rounds=3,
                )
                for r in range(2)
            ],
        )
        batch.run(5, stop_when=stop)
        # Rounds 0..2 execute for both runs; the cap-round check (index 2)
        # must still see both active before they freeze.
        assert len(seen) == 3
        assert seen[2].tolist() == [True, True]

    def test_negative_per_run_cap_rejected(self):
        with pytest.raises(ConfigurationError, match="max_rounds"):
            BatchedEngine(
                "push_sum",
                [
                    BatchedRun(
                        topology=ring(4),
                        values=np.ones(4),
                        weights=np.ones(4),
                        max_rounds=-1,
                    )
                ],
            )
