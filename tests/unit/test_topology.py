"""Unit tests for repro.topology (base + standard builders)."""

import pytest

from repro.exceptions import TopologyError
from repro.topology import (
    Topology,
    binary_tree,
    bus,
    complete,
    directed_edge_list,
    from_adjacency,
    grid2d,
    hypercube,
    hypercube_for_nodes,
    ring,
    star,
    torus3d,
    torus3d_for_nodes,
)


class TestTopologyBase:
    def test_basic_properties(self):
        topo = Topology(3, [(0, 1), (1, 2)], name="path3")
        assert topo.n == 3
        assert topo.num_edges == 2
        assert topo.neighbors(1) == (0, 2)
        assert topo.degree(0) == 1
        assert topo.has_edge(0, 1)
        assert not topo.has_edge(0, 2)
        assert len(topo) == 3
        assert list(topo) == [0, 1, 2]

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 0), (0, 1)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 2)])

    def test_rejects_isolated_node(self):
        with pytest.raises(TopologyError):
            Topology(3, [(0, 1)])

    def test_rejects_disconnected(self):
        with pytest.raises(TopologyError):
            Topology(4, [(0, 1), (2, 3)])

    def test_disconnected_allowed_when_requested(self):
        topo = Topology(4, [(0, 1), (2, 3)], require_connected=False)
        assert topo.n == 4

    def test_neighbor_index_roundtrip(self):
        topo = ring(5)
        for i in topo.nodes():
            for j in topo.neighbors(i):
                assert topo.neighbors(i)[topo.neighbor_index(i, j)] == j

    def test_neighbor_index_rejects_non_neighbor(self):
        topo = ring(5)
        with pytest.raises(TopologyError):
            topo.neighbor_index(0, 2)

    def test_equality_and_hash(self):
        a = ring(5)
        b = ring(5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != bus(5)

    def test_without_edge(self):
        topo = ring(5)
        smaller = topo.without_edge(0, 1)
        assert not smaller.has_edge(0, 1)
        assert smaller.num_edges == topo.num_edges - 1

    def test_without_edge_disconnecting_rejected(self):
        topo = bus(3)
        with pytest.raises(TopologyError):
            topo.without_edge(0, 1)

    def test_without_edge_missing(self):
        with pytest.raises(TopologyError):
            ring(5).without_edge(0, 2)

    def test_without_node(self):
        topo = complete(4)
        smaller = topo.without_node(2)
        assert smaller.n == 3
        relabel = smaller.relabeling()
        assert relabel == {0: 0, 1: 1, 3: 2}

    def test_directed_edge_list(self):
        topo = bus(3)
        pairs = directed_edge_list(topo)
        assert sorted(pairs) == [(0, 1), (1, 0), (1, 2), (2, 1)]

    def test_invalid_n(self):
        with pytest.raises(TopologyError):
            Topology(0, [])

    def test_single_node(self):
        topo = Topology(1, [])
        assert topo.n == 1
        assert topo.neighbors(0) == ()


class TestStandardBuilders:
    def test_bus(self):
        topo = bus(5)
        assert topo.num_edges == 4
        assert topo.degree(0) == 1
        assert topo.degree(2) == 2

    def test_bus_single(self):
        assert bus(1).n == 1

    def test_ring(self):
        topo = ring(6)
        assert topo.num_edges == 6
        assert all(topo.degree(i) == 2 for i in topo.nodes())
        with pytest.raises(TopologyError):
            ring(2)

    def test_complete(self):
        topo = complete(5)
        assert topo.num_edges == 10
        assert all(topo.degree(i) == 4 for i in topo.nodes())

    def test_star(self):
        topo = star(5)
        assert topo.degree(0) == 4
        assert all(topo.degree(i) == 1 for i in range(1, 5))
        with pytest.raises(TopologyError):
            star(1)

    def test_binary_tree(self):
        topo = binary_tree(7)
        assert topo.num_edges == 6
        assert topo.degree(0) == 2
        assert topo.degree(3) == 1  # leaf

    def test_hypercube(self):
        for dim in (1, 2, 3, 6):
            topo = hypercube(dim)
            assert topo.n == 2 ** dim
            assert all(topo.degree(i) == dim for i in topo.nodes())
            assert topo.num_edges == dim * 2 ** (dim - 1)

    def test_hypercube_adjacency_is_bitflip(self):
        topo = hypercube(4)
        for i in topo.nodes():
            for j in topo.neighbors(i):
                assert bin(i ^ j).count("1") == 1

    def test_hypercube_for_nodes(self):
        assert hypercube_for_nodes(64).n == 64
        with pytest.raises(TopologyError):
            hypercube_for_nodes(63)

    def test_torus3d(self):
        topo = torus3d(3)
        assert topo.n == 27
        assert all(topo.degree(i) == 6 for i in topo.nodes())

    def test_torus3d_side2_degree3(self):
        # Wrap-around links coincide with mesh links for side 2.
        topo = torus3d(2)
        assert topo.n == 8
        assert all(topo.degree(i) == 3 for i in topo.nodes())

    def test_torus3d_for_nodes(self):
        assert torus3d_for_nodes(27).n == 27
        assert torus3d_for_nodes(512).n == 512
        with pytest.raises(TopologyError):
            torus3d_for_nodes(100)

    def test_grid2d(self):
        topo = grid2d(3, 4)
        assert topo.n == 12
        assert topo.degree(0) == 2  # corner
        assert topo.degree(5) == 4  # interior

    def test_grid2d_periodic(self):
        topo = grid2d(4, 4, periodic=True)
        assert all(topo.degree(i) == 4 for i in topo.nodes())

    def test_from_adjacency(self):
        topo = from_adjacency([[1], [0, 2], [1]])
        assert topo.num_edges == 2

    def test_from_adjacency_rejects_asymmetric(self):
        with pytest.raises(TopologyError):
            from_adjacency([[1], [], [1]])
