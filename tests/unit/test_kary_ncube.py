"""Unit tests for the k-ary n-cube topology family."""

import pytest

from repro.exceptions import TopologyError
from repro.topology import (
    build,
    diameter,
    hypercube,
    kary_ncube,
    ring,
    torus3d,
)


class TestKaryNCube:
    def test_k2_is_hypercube(self):
        for dim in (2, 3, 4):
            assert kary_ncube(2, dim) == hypercube(dim)

    def test_d3_is_torus3d(self):
        for k in (3, 4):
            a = kary_ncube(k, 3)
            b = torus3d(k)
            assert a.n == b.n
            # Same degree sequence and diameter (the labelings differ by
            # axis order, so compare invariants rather than edge sets).
            assert sorted(a.degrees()) == sorted(b.degrees())
            assert diameter(a) == diameter(b)

    def test_d1_is_ring(self):
        assert kary_ncube(5, 1) == ring(5)

    def test_degree_formula(self):
        # Degree = 2d for k >= 3; d for k = 2 (the +-1 neighbors coincide).
        topo = kary_ncube(4, 2)
        assert all(topo.degree(i) == 4 for i in topo.nodes())
        topo2 = kary_ncube(2, 5)
        assert all(topo2.degree(i) == 5 for i in topo2.nodes())

    def test_diameter_formula(self):
        # Diameter = d * floor(k / 2).
        assert diameter(kary_ncube(4, 2)) == 4
        assert diameter(kary_ncube(5, 2)) == 4
        assert diameter(kary_ncube(3, 3)) == 3

    def test_equal_node_count_different_shapes(self):
        # 64 nodes as 2-ary 6-cube vs 8-ary 2-cube vs 4-ary 3-cube.
        shapes = [(2, 6), (8, 2), (4, 3)]
        topos = [kary_ncube(k, d) for k, d in shapes]
        assert all(t.n == 64 for t in topos)
        # Fatter tori have larger diameter at equal n.
        assert diameter(topos[1]) > diameter(topos[0])

    def test_rejects_k1(self):
        with pytest.raises(TopologyError):
            kary_ncube(1, 3)

    def test_registry(self):
        topo = build("kary_ncube", 27, k=3)
        assert topo.n == 27
        with pytest.raises(TopologyError):
            build("kary_ncube", 10, k=3)
