"""Tests for the flight recorder's triggers, bounds and dump hygiene.

The trigger thresholds encode measured behavior: healthy flow-algorithm
runs show non-finite estimate streaks up to ~4 rounds and a permanent
mass-drift noise floor up to ~0.65, so the black box must stay silent on
transients and fire only on *persistent* signatures. Stub engines let the
tests walk the streak logic round by round.
"""

import json

import numpy as np
import pytest

from repro.faults.events import FaultPlan, LinkFailure
from repro.topology import ring
from repro.tracing import FlightRecorder
from tests.conftest import build_engine


class StubVectorEngine:
    """Duck-types the vectorized engine surface the recorder reads."""

    def __init__(self, n=4, value=1.0):
        self._values = np.full((n, 1), value)
        self._weights = np.ones(n)

    def estimates(self):
        return self._values / self._weights[:, None]

    def estimate_pairs(self):
        return self._values, self._weights

    def set_all(self, value):
        self._values[:] = value

    def drain_weights(self, factor):
        self._weights *= factor


def run_rounds(flight, engine, rounds, start=0):
    for r in range(start, start + rounds):
        flight.on_round_end(engine, r)


class TestNonFiniteTrigger:
    def test_fires_only_after_persistent_streak(self, tmp_path):
        engine = StubVectorEngine()
        flight = FlightRecorder(tmp_path, nonfinite_window=4)
        flight.on_run_start(engine)
        engine.set_all(np.nan)
        run_rounds(flight, engine, 3)
        assert flight.dump_paths == []  # streak shorter than the window
        flight.on_round_end(engine, 3)
        assert [p.name for p in flight.dump_paths] == ["flight_non_finite_r3.json"]

    def test_transient_streak_resets(self, tmp_path):
        # The healthy zero-crossing pattern: a few inf rounds, then finite.
        engine = StubVectorEngine()
        flight = FlightRecorder(tmp_path, nonfinite_window=4)
        flight.on_run_start(engine)
        engine.set_all(np.inf)
        run_rounds(flight, engine, 3)
        engine.set_all(1.0)
        flight.on_round_end(engine, 3)  # recovery resets the streak
        engine.set_all(np.inf)
        run_rounds(flight, engine, 3, start=4)
        assert flight.dump_paths == []

    def test_dump_is_strict_json_despite_nan_state(self, tmp_path):
        engine = StubVectorEngine()
        flight = FlightRecorder(tmp_path, nonfinite_window=1)
        flight.on_run_start(engine)
        engine.set_all(np.nan)
        flight.on_round_end(engine, 0)
        (path,) = flight.dump_paths
        payload = json.loads(
            path.read_text(),
            parse_constant=lambda name: pytest.fail(f"non-strict {name}"),
        )
        assert payload["reason"] == "non_finite"
        assert payload["detail"]["sustained_rounds"] == 1
        assert payload["state"]["finite"] is False
        kinds = [e["kind"] for e in payload["events"]]
        assert kinds[0] == "run_start"


class TestMassDriftTrigger:
    def test_sustained_drain_fires_after_window(self, tmp_path):
        engine = StubVectorEngine()
        flight = FlightRecorder(tmp_path, mass_tolerance=0.5, mass_window=3)
        flight.on_run_start(engine)
        run_rounds(flight, engine, 5)
        assert flight.dump_paths == []  # healthy: zero drift
        # Drain 90% of the conserved mass, persistently.
        engine.set_all(0.1)
        engine.drain_weights(0.1)
        run_rounds(flight, engine, 2, start=5)
        assert flight.dump_paths == []  # below the persistence window
        flight.on_round_end(engine, 7)
        assert [p.name for p in flight.dump_paths] == ["flight_mass_drift_r7.json"]
        payload = json.loads(flight.dump_paths[0].read_text())
        assert payload["detail"]["drift"] > 0.5
        assert payload["detail"]["sustained_rounds"] == 3

    def test_transient_spike_does_not_fire(self, tmp_path):
        engine = StubVectorEngine()
        flight = FlightRecorder(tmp_path, mass_tolerance=0.5, mass_window=3)
        flight.on_run_start(engine)
        engine.drain_weights(0.01)  # two-round spike...
        run_rounds(flight, engine, 2)
        engine.drain_weights(100.0)  # ...that self-heals
        run_rounds(flight, engine, 10, start=2)
        assert flight.dump_paths == []

    def test_none_tolerance_disables_the_trigger(self, tmp_path):
        engine = StubVectorEngine()
        flight = FlightRecorder(tmp_path, mass_tolerance=None)
        flight.on_run_start(engine)
        engine.drain_weights(1e-6)
        run_rounds(flight, engine, 64)
        assert flight.dump_paths == []


class TestLinkFailureTrigger:
    def test_handled_failure_dumps_on_a_real_engine(self, tmp_path):
        topo = ring(6)
        flight = FlightRecorder(tmp_path)
        plan = FaultPlan(
            link_failures=[LinkFailure(round=2, u=0, v=1, detection_delay=1)]
        )
        engine, _ = build_engine(
            topo, "push_flow", [float(i) for i in range(6)],
            fault_plan=plan, observers=[flight],
        )
        engine.run(10)
        assert [p.name for p in flight.dump_paths] == ["flight_link_failure_r3.json"]
        payload = json.loads(flight.dump_paths[0].read_text())
        assert payload["detail"]["edge"] == [0, 1]
        kinds = [e["kind"] for e in payload["events"]]
        assert "fault" in kinds and "link_handled" in kinds
        # The ring buffer held the pre-failure rounds: context survives.
        assert {"kind": "run_start", "engine": "SynchronousEngine"} in payload["events"]

    def test_trigger_can_be_disabled(self, tmp_path):
        topo = ring(6)
        flight = FlightRecorder(tmp_path, dump_on_link_failure=False)
        plan = FaultPlan(
            link_failures=[LinkFailure(round=2, u=0, v=1, detection_delay=1)]
        )
        engine, _ = build_engine(
            topo, "push_flow", [1.0] * 6, fault_plan=plan, observers=[flight]
        )
        engine.run(10)
        assert flight.dump_paths == []


class TestDumpBounds:
    def test_once_per_reason_by_default(self, tmp_path):
        topo = ring(6)
        flight = FlightRecorder(tmp_path)
        plan = FaultPlan(
            link_failures=[
                LinkFailure(round=1, u=0, v=1, detection_delay=1),
                LinkFailure(round=4, u=2, v=3, detection_delay=1),
            ]
        )
        engine, _ = build_engine(
            topo, "push_flow", [1.0] * 6, fault_plan=plan, observers=[flight]
        )
        engine.run(10)
        assert len(flight.dump_paths) == 1

    def test_every_occurrence_when_disabled(self, tmp_path):
        topo = ring(6)
        flight = FlightRecorder(tmp_path, once_per_reason=False)
        plan = FaultPlan(
            link_failures=[
                LinkFailure(round=1, u=0, v=1, detection_delay=1),
                LinkFailure(round=4, u=2, v=3, detection_delay=1),
            ]
        )
        engine, _ = build_engine(
            topo, "push_flow", [1.0] * 6, fault_plan=plan, observers=[flight]
        )
        engine.run(10)
        assert [p.name for p in flight.dump_paths] == [
            "flight_link_failure_r2.json",
            "flight_link_failure_r5.json",
        ]

    def test_max_dumps_caps_the_total(self, tmp_path):
        engine = StubVectorEngine()
        flight = FlightRecorder(
            tmp_path, once_per_reason=False, max_dumps=2,
            nonfinite_window=1,
        )
        flight.on_run_start(engine)
        # Alternate nan/finite rounds so each nan round is a fresh streak.
        for r in range(10):
            engine.set_all(np.nan if r % 2 == 0 else 1.0)
            flight.on_round_end(engine, r)
        assert len(flight.dump_paths) == 2

    def test_ring_buffer_capacity_bounds_events(self, tmp_path):
        engine = StubVectorEngine()
        flight = FlightRecorder(tmp_path, capacity=16)
        flight.on_run_start(engine)
        run_rounds(flight, engine, 100)
        assert len(flight.events) == 16
        # Oldest events fell off: only the most recent rounds remain.
        assert flight.events[0]["round"] == 84
        assert flight.events[-1]["round"] == 99

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0},
            {"mass_window": 0},
            {"nonfinite_window": 0},
        ],
    )
    def test_bad_configuration_rejected(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path, **kwargs)


class TestWatch:
    def test_escaping_exception_dumps_and_reraises(self, tmp_path):
        engine = StubVectorEngine()
        flight = FlightRecorder(tmp_path)
        flight.on_run_start(engine)
        run_rounds(flight, engine, 3)
        with pytest.raises(RuntimeError, match="boom"):
            with flight.watch(engine):
                raise RuntimeError("boom")
        assert [p.name for p in flight.dump_paths] == ["flight_exception_r2.json"]
        payload = json.loads(flight.dump_paths[0].read_text())
        assert payload["events"][-1] == {
            "kind": "exception",
            "error": "RuntimeError: boom",
        }

    def test_clean_exit_dumps_nothing(self, tmp_path):
        engine = StubVectorEngine()
        flight = FlightRecorder(tmp_path)
        with flight.watch(engine):
            pass
        assert flight.dump_paths == []
