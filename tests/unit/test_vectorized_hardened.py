"""Unit tests for the vectorized hardened-PCF engine."""

import numpy as np
import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.simulation.schedule import UniformGossipSchedule
from repro.topology import bus, hypercube, ring, star, torus3d
from repro.vectorized.hardened import VectorPushCancelFlowHardened
from repro.vectorized.parity import compare_engines, materialize_schedule


class TestBasics:
    def test_initiator_map(self):
        topo = ring(4)
        engine = VectorPushCancelFlowHardened(topo, np.ones(4), np.ones(4))
        # initiator[i, s] iff i < nbr[i, s].
        nbr = engine._arrays.nbr
        for i in range(4):
            for s in range(engine._arrays.degree[i]):
                assert engine._initiator[i, s] == (i < nbr[i, s])

    def test_average_convergence(self):
        topo = hypercube(5)
        data = np.random.default_rng(0).uniform(size=topo.n)
        engine = VectorPushCancelFlowHardened(topo, data, np.ones(topo.n), seed=1)
        engine.run(500)
        truth = float(np.mean(data))
        est = engine.estimates()[:, 0]
        assert np.max(np.abs(est - truth) / abs(truth)) < 1e-11

    def test_vector_payload_convergence(self):
        topo = hypercube(4)
        data = np.random.default_rng(1).uniform(size=(topo.n, 3))
        engine = VectorPushCancelFlowHardened(topo, data, np.ones(topo.n), seed=2)
        engine.run(400)
        truth = data.mean(axis=0)
        assert np.max(np.abs(engine.estimates() - truth[None, :])) < 1e-11

    def test_loss_tolerated_exactly(self):
        # The hardened closure: even with heavy loss the run converges to
        # high accuracy (no frozen asymmetries, no deadlock).
        topo = hypercube(4)
        data = np.random.default_rng(2).uniform(size=topo.n)
        engine = VectorPushCancelFlowHardened(
            topo, data, np.ones(topo.n), seed=3, loss_probability=0.3
        )
        engine.run(1500)
        truth = float(np.mean(data))
        est = engine.estimates()[:, 0]
        assert np.max(np.abs(est - truth) / abs(truth)) < 1e-10

    def test_counters_advance(self):
        topo = hypercube(4)
        engine = VectorPushCancelFlowHardened(
            topo, np.ones(topo.n), np.ones(topo.n), seed=0
        )
        engine.run(50)
        assert engine.cancellations > 0
        assert engine.catch_ups > 0

    def test_sum_aggregate(self):
        topo = hypercube(4)
        data = np.random.default_rng(3).uniform(size=topo.n)
        weights = np.zeros(topo.n)
        weights[0] = 1.0
        engine = VectorPushCancelFlowHardened(topo, data, weights, seed=4)
        engine.run(800)
        truth = float(np.sum(data))
        est = engine.estimates()[:, 0]
        assert np.max(np.abs(est - truth) / abs(truth)) < 1e-10


class TestParityWithObjectEngine:
    @pytest.mark.parametrize(
        "topo", [ring(8), star(8), hypercube(3), torus3d(2), bus(9)],
        ids=lambda t: t.name,
    )
    def test_bitwise_parity(self, topo):
        rng = np.random.default_rng(5)
        data = rng.uniform(size=topo.n)
        initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
        targets = materialize_schedule(
            UniformGossipSchedule(topo.n, 3), topo, 80
        )
        obj, vec = compare_engines(
            "push_cancel_flow_hardened", topo, initial, targets
        )
        np.testing.assert_array_equal(obj, vec)

    def test_bitwise_parity_long_run(self):
        topo = hypercube(4)
        rng = np.random.default_rng(6)
        initial = initial_mass_pairs(
            AggregateKind.AVERAGE, list(rng.uniform(size=topo.n))
        )
        targets = materialize_schedule(
            UniformGossipSchedule(topo.n, 7), topo, 300
        )
        obj, vec = compare_engines(
            "push_cancel_flow_hardened", topo, initial, targets
        )
        np.testing.assert_array_equal(obj, vec)

    def test_bitwise_parity_vector_payloads(self):
        topo = hypercube(3)
        rng = np.random.default_rng(7)
        data = [rng.uniform(size=2) for _ in range(topo.n)]
        initial = initial_mass_pairs(AggregateKind.AVERAGE, data)
        targets = materialize_schedule(
            UniformGossipSchedule(topo.n, 9), topo, 60
        )
        obj, vec = compare_engines(
            "push_cancel_flow_hardened", topo, initial, targets
        )
        np.testing.assert_array_equal(obj, vec)
