"""Unit tests for the push-cancel-flow (PCF) node state machine (Fig. 5)."""

import numpy as np
import pytest

from repro.algorithms.push_cancel_flow import PushCancelFlow
from repro.algorithms.push_flow import PushFlow
from repro.algorithms.state import MassPair
from repro.exceptions import ConfigurationError, ProtocolError


def make_pair(variant="efficient"):
    a = PushCancelFlow(0, [1], MassPair(2.0, 1.0), variant=variant)
    b = PushCancelFlow(1, [0], MassPair(6.0, 1.0), variant=variant)
    return a, b


def ping(a, b):
    b.on_receive(a.node_id, a.make_message(b.node_id))


class TestBasics:
    def test_initial_estimate(self):
        a, _ = make_pair()
        assert a.estimate() == 2.0

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            PushCancelFlow(0, [1], MassPair(1.0, 1.0), variant="quick")

    def test_protocol_errors(self):
        a, _ = make_pair()
        with pytest.raises(ProtocolError):
            a.make_message(9)

    @pytest.mark.parametrize("variant", ["efficient", "robust"])
    def test_mass_conserved_over_random_exchanges(self, variant):
        rng = np.random.default_rng(1)
        a, b = make_pair(variant)
        for _ in range(100):
            if rng.random() < 0.5:
                ping(a, b)
            else:
                ping(b, a)
            total = a.estimate_pair() + b.estimate_pair()
            assert total.value == pytest.approx(8.0, rel=1e-12)
            assert total.weight == pytest.approx(2.0, rel=1e-12)

    @pytest.mark.parametrize("variant", ["efficient", "robust"])
    def test_two_nodes_converge_to_average(self, variant):
        a, b = make_pair(variant)
        for _ in range(100):
            ping(a, b)
            ping(b, a)
        assert a.estimate() == pytest.approx(4.0, rel=1e-12)
        assert b.estimate() == pytest.approx(4.0, rel=1e-12)

    def test_cancellations_happen(self):
        a, b = make_pair()
        for _ in range(20):
            ping(a, b)
            ping(b, a)
        assert a.cancellations + b.cancellations > 0
        assert a.swaps + b.swaps > 0

    def test_flows_stay_small_relative_to_history(self):
        # After many exchanges the flows should reflect recent estimates,
        # not the accumulated transfer volume.
        a, b = make_pair()
        for _ in range(200):
            ping(a, b)
            ping(b, a)
        assert a.max_flow_magnitude() < 20.0


class TestEquivalenceWithPF:
    def test_matches_push_flow_exactly_on_short_run(self):
        # Same deterministic exchange pattern: PCF (efficient) and PF must
        # produce near-identical estimates failure-free (Sec. III-B).
        pf_a = PushFlow(0, [1], MassPair(2.0, 1.0))
        pf_b = PushFlow(1, [0], MassPair(6.0, 1.0))
        pcf_a, pcf_b = make_pair()
        for _ in range(50):
            pf_b.on_receive(0, pf_a.make_message(1))
            pcf_b.on_receive(0, pcf_a.make_message(1))
            pf_a.on_receive(1, pf_b.make_message(0))
            pcf_a.on_receive(1, pcf_b.make_message(0))
            assert pcf_a.estimate() == pytest.approx(pf_a.estimate(), rel=1e-12)
            assert pcf_b.estimate() == pytest.approx(pf_b.estimate(), rel=1e-12)


class TestFailureHandling:
    @pytest.mark.parametrize("variant", ["efficient", "robust"])
    def test_link_failure_drops_edge_state(self, variant):
        a = PushCancelFlow(0, [1, 2], MassPair(2.0, 1.0), variant=variant)
        a.on_receive(
            1,
            PushCancelFlow(1, [0], MassPair(4.0, 1.0), variant=variant).make_message(
                0
            ),
        )
        a.on_link_failed(1)
        assert a.neighbors == (2,)
        assert 1 not in a.local_flows()

    def test_link_failure_perturbation_matches_flow_ratio(self):
        # After convergence the edge flow's value/weight ratio tracks the
        # aggregate, so excluding the edge barely moves the estimate.
        a, b = make_pair()
        for _ in range(300):
            ping(a, b)
            ping(b, a)
        est_before = a.estimate()
        a.on_link_failed(1)
        # With the only neighbor gone, the estimate must remain close to
        # the converged aggregate (a's share of mass has ratio ~ aggregate).
        assert a.estimate() == pytest.approx(est_before, rel=1e-6)


class TestRobustVariant:
    def test_memory_bit_flip_heals_in_robust_variant(self):
        a, b = make_pair("robust")
        for _ in range(10):
            ping(a, b)
            ping(b, a)
        a.inject_flow_bit_flip(1, 45, slot=0)
        for _ in range(10):
            ping(b, a)
            ping(a, b)
        total = a.estimate_pair() + b.estimate_pair()
        assert total.value == pytest.approx(8.0, rel=1e-9)

    def test_memory_bit_flip_permanently_corrupts_efficient_variant(self):
        a, b = make_pair("efficient")
        for _ in range(10):
            ping(a, b)
            ping(b, a)
        # Pump the active flow so the flipped slot holds a sizable value
        # (a flip on a just-cancelled zero flow would be a denormal-sized
        # no-op), then flip a high mantissa bit: the incremental phi
        # bookkeeping bakes the discrepancy in at the next repair.
        a.make_message(1)  # adds e/2 to the active flow; message dropped
        active_slot = a.edge_state(1).active
        assert abs(a.edge_state(1).flow(active_slot).value) > 0.1
        a.inject_flow_bit_flip(1, 51, slot=active_slot)
        for _ in range(50):
            ping(b, a)
            ping(a, b)
        total = a.estimate_pair() + b.estimate_pair()
        assert total.value != pytest.approx(8.0, rel=1e-12)

    def test_estimate_recomputed_from_flows_in_robust(self):
        a, _ = make_pair("robust")
        state = a.edge_state(1)
        state.add_to_active(MassPair(1.0, 0.0))
        # Direct flow mutation is visible in the robust estimate...
        assert a.estimate_pair().value == 1.0

    def test_estimate_uses_phi_in_efficient(self):
        a, _ = make_pair("efficient")
        state = a.edge_state(1)
        state.add_to_active(MassPair(1.0, 0.0))
        # ...but invisible to the efficient estimate (phi not updated).
        assert a.estimate_pair().value == 2.0


class TestVectorPayloads:
    def test_vector_reduction_pairwise(self):
        a = PushCancelFlow(0, [1], MassPair(np.array([2.0, 0.0]), 1.0))
        b = PushCancelFlow(1, [0], MassPair(np.array([6.0, 4.0]), 1.0))
        for _ in range(100):
            b.on_receive(0, a.make_message(1))
            a.on_receive(1, b.make_message(0))
        np.testing.assert_allclose(a.estimate(), [4.0, 2.0], rtol=1e-12)
        np.testing.assert_allclose(b.estimate(), [4.0, 2.0], rtol=1e-12)
