"""Unit tests for the ASCII plotting helper."""


import pytest

from repro.experiments.plotting import ascii_log_plot


class TestAsciiLogPlot:
    def test_basic_render(self):
        series = {"errors": [10.0 ** -t for t in range(20)]}
        out = ascii_log_plot(series, width=40, height=10, title="decay")
        lines = out.splitlines()
        assert lines[0] == "decay"
        assert len([l for l in lines if l.startswith("1e")]) == 10
        assert "[1] errors" in out
        # Monotone decay: the glyph appears in the top-left and bottom-right.
        assert "1" in lines[1]

    def test_two_series_two_glyphs(self):
        series = {
            "a": [1.0] * 10,
            "b": [1e-8] * 10,
        }
        out = ascii_log_plot(series, width=30, height=8)
        assert "[1] a" in out and "[2] b" in out
        rows = [l for l in out.splitlines() if l.startswith("1e")]
        # 'a' (1e0) sits on the top row; 'b' (1e-8) is midway down the
        # 1e0..1e-16 axis - strictly below 'a'.
        assert "1" in rows[0]
        row_of_b = next(i for i, r in enumerate(rows) if "2" in r)
        assert 0 < row_of_b < len(rows) - 1

    def test_markers_on_axis(self):
        series = {"e": [0.5] * 100}
        out = ascii_log_plot(series, width=50, height=5, markers=[50])
        axis = [l for l in out.splitlines() if "+" in l][0]
        assert "^" in axis
        assert "markers: 50" in out

    def test_nonfinite_values_skipped(self):
        series = {"e": [1.0, float("inf"), float("nan"), 0.5]}
        out = ascii_log_plot(series, width=20, height=5)
        assert out  # must not raise

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_log_plot({})
        with pytest.raises(ValueError):
            ascii_log_plot({"x": [1.0]})
        with pytest.raises(ValueError):
            ascii_log_plot({"x": [1.0, 2.0]}, width=4)

    def test_floor_clamps(self):
        out = ascii_log_plot({"e": [1e-30, 1e-30]}, floor=1e-16, height=5, width=20)
        rows = [l for l in out.splitlines() if l.startswith("1e")]
        assert "1" in rows[-1]  # clamped to the bottom row
