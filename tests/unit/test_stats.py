"""Unit tests for repro.util.stats."""

import math

import numpy as np
import pytest

from repro.util.stats import (
    RunningStats,
    finite_mean,
    finite_median,
    geometric_mean,
    median,
    percentile,
)


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even_interpolates(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_single(self):
        assert median([7.0]) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        for n in [1, 2, 5, 10, 101]:
            values = rng.standard_normal(n).tolist()
            assert median(values) == pytest.approx(float(np.median(values)))


class TestPercentile:
    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_median_agreement(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 50) == median(values)

    def test_matches_numpy_linear(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(size=17).tolist()
        for q in [0, 10, 25, 33.3, 50, 90, 100]:
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestRunningStats:
    def test_mean_and_variance(self):
        stats = RunningStats()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats.extend(data)
        assert stats.count == len(data)
        assert stats.mean == pytest.approx(float(np.mean(data)))
        assert stats.variance == pytest.approx(float(np.var(data, ddof=1)))
        assert stats.std == pytest.approx(float(np.std(data, ddof=1)))
        assert stats.min == 2.0
        assert stats.max == 9.0

    def test_single_value_variance_zero(self):
        stats = RunningStats()
        stats.add(3.0)
        assert stats.variance == 0.0

    def test_empty_raises(self):
        stats = RunningStats()
        with pytest.raises(ValueError):
            _ = stats.mean
        with pytest.raises(ValueError):
            _ = stats.variance
        with pytest.raises(ValueError):
            _ = stats.min

    def test_summary_keys(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0])
        summary = stats.summary()
        assert set(summary) == {"count", "mean", "std", "min", "max"}

    def test_numerically_stable_for_offset_data(self):
        # Welford should not lose precision for large-offset data.
        stats = RunningStats()
        offset = 1e9
        data = [offset + x for x in [1.0, 2.0, 3.0]]
        stats.extend(data)
        assert stats.variance == pytest.approx(1.0, rel=1e-9)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_no_overflow(self):
        assert math.isfinite(geometric_mean([1e300, 1e300, 1e300]))


class TestFiniteMeanMedian:
    def test_filters_non_finite(self):
        values = [1.0, float("nan"), 3.0, float("inf"), float("-inf")]
        assert finite_mean(values) == 2.0
        assert finite_median(values) == 2.0

    def test_all_non_finite_returns_none(self):
        assert finite_mean([float("nan"), float("inf")]) is None
        assert finite_median([float("nan")]) is None

    def test_empty_returns_none(self):
        assert finite_mean([]) is None
        assert finite_median([]) is None

    def test_agrees_with_plain_median_when_finite(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert finite_median(values) == median(values)
        assert finite_mean(values) == 2.5
