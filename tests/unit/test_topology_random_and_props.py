"""Unit tests for random topologies, graph properties, and the registry."""


import networkx as nx
import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology import (
    FAMILIES,
    average_path_length,
    bfs_distances,
    build,
    bus,
    complete,
    diameter,
    erdos_renyi,
    expected_rounds,
    hypercube,
    metropolis_weights,
    random_regular,
    ring,
    spectral_gap,
    summarize,
    torus3d,
    watts_strogatz,
)


class TestRandomGraphs:
    def test_erdos_renyi_connected(self):
        topo = erdos_renyi(30, 0.3, seed=0)
        assert topo.n == 30

    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi(20, 0.3, seed=5)
        b = erdos_renyi(20, 0.3, seed=5)
        assert a.edges == b.edges

    def test_erdos_renyi_impossible(self):
        with pytest.raises(TopologyError):
            erdos_renyi(20, 0.0, seed=0, max_attempts=3)

    def test_random_regular_degrees(self):
        topo = random_regular(16, 4, seed=1)
        assert all(topo.degree(i) == 4 for i in topo.nodes())

    def test_random_regular_parity_check(self):
        with pytest.raises(TopologyError):
            random_regular(5, 3, seed=0)  # n*k odd

    def test_random_regular_k_too_large(self):
        with pytest.raises(TopologyError):
            random_regular(4, 4, seed=0)

    def test_watts_strogatz(self):
        topo = watts_strogatz(24, 4, 0.1, seed=2)
        assert topo.n == 24
        # Total edge count is preserved by rewiring.
        assert topo.num_edges == 24 * 2

    def test_watts_strogatz_rejects_odd_k(self):
        with pytest.raises(TopologyError):
            watts_strogatz(10, 3, 0.1)


class TestProperties:
    def test_bfs_distances_path(self):
        topo = bus(4)
        assert bfs_distances(topo, 0) == [0, 1, 2, 3]

    def test_diameter_known_values(self):
        assert diameter(bus(5)) == 4
        assert diameter(ring(6)) == 3
        assert diameter(complete(7)) == 1
        assert diameter(hypercube(4)) == 4
        assert diameter(torus3d(4)) == 6  # 3 axes x floor(4/2)

    def test_diameter_single_node(self):
        from repro.topology import Topology

        assert diameter(Topology(1, [])) == 0

    def test_diameter_sampled_is_lower_bound(self):
        topo = hypercube(6)
        assert diameter(topo, sample=4) <= diameter(topo)

    def test_average_path_length_matches_networkx(self):
        topo = hypercube(4)
        graph = nx.Graph(topo.edges)
        assert average_path_length(topo) == pytest.approx(
            nx.average_shortest_path_length(graph)
        )

    def test_metropolis_weights_doubly_stochastic(self):
        topo = erdos_renyi(12, 0.4, seed=3)
        w = metropolis_weights(topo)
        np.testing.assert_allclose(w.sum(axis=0), 1.0, atol=1e-12)
        np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-12)
        np.testing.assert_allclose(w, w.T)
        assert (w >= -1e-15).all()

    def test_spectral_gap_ordering(self):
        # Better-connected graphs mix faster.
        gap_complete = spectral_gap(complete(16))
        gap_hypercube = spectral_gap(hypercube(4))
        gap_ring = spectral_gap(ring(16))
        assert gap_complete > gap_hypercube > gap_ring > 0

    def test_spectral_gap_single(self):
        from repro.topology import Topology

        assert spectral_gap(Topology(1, [])) == 1.0

    def test_expected_rounds_monotone_in_eps(self):
        topo = hypercube(4)
        assert expected_rounds(topo, 1e-12) > expected_rounds(topo, 1e-3)

    def test_expected_rounds_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            expected_rounds(ring(4), 2.0)

    def test_summarize_keys(self):
        info = summarize(hypercube(3))
        assert info["n"] == 8
        assert info["regular"] is True
        assert info["diameter"] == 3
        assert "spectral_gap" in info


class TestRegistry:
    @pytest.mark.parametrize(
        "family,n",
        [
            ("bus", 10),
            ("ring", 10),
            ("complete", 10),
            ("star", 10),
            ("binary_tree", 10),
            ("hypercube", 16),
            ("torus3d", 27),
            ("grid2d", 16),
            ("erdos_renyi", 16),
            ("random_regular", 16),
        ],
    )
    def test_build_all_families(self, family, n):
        topo = build(family, n, seed=0)
        assert topo.n == n

    def test_families_list_is_complete(self):
        for family in FAMILIES:
            n = {"hypercube": 8, "torus3d": 8, "grid2d": 9}.get(family, 8)
            assert build(family, n, seed=1).n == n

    def test_unknown_family(self):
        with pytest.raises(TopologyError):
            build("mystery", 8)

    def test_bad_counts(self):
        with pytest.raises(TopologyError):
            build("hypercube", 10)
        with pytest.raises(TopologyError):
            build("torus3d", 10)
        with pytest.raises(TopologyError):
            build("grid2d", 10)
