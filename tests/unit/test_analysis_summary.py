"""Scenario/coverage/progress aggregations over the normalized frame."""

import math
import pathlib

import pytest

from repro.analysis.campaigns.frame import Frame
from repro.analysis.campaigns.loader import COLUMNS, CampaignData, normalize_record
from repro.analysis.campaigns.summary import (
    alert_summary,
    coverage_summary,
    flight_dump_index,
    progress_stats,
    scenario_summary,
)


def _cell(cell_id, **fields):
    raw = {
        "cell_id": cell_id,
        "status": "ok",
        "algorithm": cell_id.split("|")[0],
        "topology": "hypercube-8",
        "fault": cell_id.split("|")[2],
        "converged": True,
        "final_error": 1e-9,
    }
    raw.update(fields)
    return normalize_record(raw)


def _data(records, expected=None, duplicates=0, skipped=0):
    return CampaignData(
        directory=pathlib.Path("."),
        frame=Frame.from_records(records, columns=COLUMNS),
        spec={"name": "t"},
        expected_cells=expected,
        duplicates=duplicates,
        skipped_lines=skipped,
    )


class TestScenarioSummary:
    def test_aggregates_and_censoring(self):
        records = [
            _cell(
                "push_flow|hc|link|s0",
                rounds_to_tolerance=100,
                recovery_rounds=10.0,
                recovered=True,
                alerts={"restart_regression": 1},
                alerts_total=1,
                flight_dumps=["a.json"],
            ),
            _cell(
                "push_flow|hc|link|s1",
                converged=False,
                rounds_to_tolerance=None,
                final_error=0.5,
                recovery_rounds=120.0,
                recovered=False,
            ),
        ]
        summary = scenario_summary(_data(records).ok)
        assert len(summary) == 1
        row = summary.row(0)
        assert row["runs"] == 2
        assert row["converged"] == "1/2"
        assert row["mean_rounds_to_eps"] == 100.0  # non-reaching cell excluded
        assert row["mean_recovery_rounds"] == 65.0
        assert row["unrecovered"] == 1
        assert row["alerts"] == 1
        assert row["flight_dumps"] == 1

    def test_non_finite_values_excluded(self):
        records = [
            _cell("push_sum|hc|none|s0", final_error="inf"),
            _cell("push_sum|hc|none|s1", final_error=1e-8, mass_drift_floor=1e-15),
            _cell("push_sum|hc|none|s2", mass_drift_floor="nan"),
        ]
        row = scenario_summary(_data(records).ok).row(0)
        # inf is filtered; the nan-drift row still contributes its 1e-9
        # final error, so the median interpolates 1e-8 and 1e-9.
        assert row["median_final_error"] == pytest.approx(5.5e-9)
        # The nan drift is filtered; the finite 1e-15 survives as the worst.
        assert math.isfinite(row["worst_mass_drift_floor"])
        assert row["worst_mass_drift_floor"] == 1e-15


class TestCoverage:
    def test_counts(self):
        records = [
            _cell("a|hc|none|s0"),
            _cell("b|hc|none|s0", status="failed", error="boom"),
        ]
        cov = coverage_summary(_data(records, expected=5, duplicates=1, skipped=2))
        assert cov == {
            "expected": 5,
            "recorded": 2,
            "ok": 1,
            "failed": 1,
            "missing": 3,
            "duplicates": 1,
            "skipped_lines": 2,
        }


class TestAlertsAndDumps:
    def test_alert_summary_per_detector(self):
        records = [
            _cell("a|hc|none|s0", alerts={"x": 2, "y": 1}, alerts_total=3),
            _cell("a|hc|none|s1", alerts={"x": 1}, alerts_total=1),
        ]
        summary = alert_summary(_data(records).frame)
        rows = {r["detector"]: r for r in summary.rows()}
        assert rows["x"]["alerts"] == 3 and rows["x"]["cells"] == 2
        assert rows["y"]["alerts"] == 1 and rows["y"]["cells"] == 1

    def test_flight_dump_index_sorted(self):
        records = [
            _cell("b|hc|none|s0", flight_dumps=["f2.json"]),
            _cell("a|hc|none|s0", flight_dumps=["f1.json"]),
            _cell("c|hc|none|s0"),
        ]
        index = flight_dump_index(_data(records).frame)
        assert [e["cell_id"] for e in index] == ["a|hc|none|s0", "b|hc|none|s0"]


class TestProgress:
    def test_throughput_and_eta_from_timestamps(self):
        records = [
            _cell(f"a|hc|none|s{i}", wall_s=0.5, recorded_at=100.0 + i * 2.0)
            for i in range(5)
        ]
        stats = progress_stats(_data(records, expected=9))
        assert stats["mean_wall_s"] == 0.5
        assert stats["elapsed_s"] == 8.0
        assert stats["cells_per_sec"] == 0.5
        assert stats["remaining_cells"] == 4.0
        assert stats["eta_s"] == 8.0

    def test_legacy_records_degrade_to_wall_stats(self):
        records = [_cell("a|hc|none|s0", wall_s=1.0)]
        stats = progress_stats(_data(records))
        assert stats["mean_wall_s"] == 1.0
        assert stats["cells_per_sec"] is None
        assert stats["eta_s"] is None
