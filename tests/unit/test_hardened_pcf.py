"""Unit tests for the latency-hardened PCF variant (the extension)."""

import numpy as np
import pytest

from repro.algorithms.flow_edge_hardened import HardenedEdgeState, PCFHPayload
from repro.algorithms.push_cancel_flow_hardened import PushCancelFlowHardened
from repro.algorithms.state import MassPair
from repro.exceptions import ConfigurationError


def zero():
    return MassPair(0.0, 0.0)


def make_pair(variant="efficient"):
    a = PushCancelFlowHardened(0, [1], MassPair(2.0, 1.0), variant=variant)
    b = PushCancelFlowHardened(1, [0], MassPair(6.0, 1.0), variant=variant)
    return a, b


def ping(src, dst):
    dst.on_receive(src.node_id, src.make_message(dst.node_id))


class TestEdgeMachine:
    def test_initiator_assignment(self):
        a, b = make_pair()
        assert a.edge_state(1).initiator  # 0 < 1
        assert not b.edge_state(0).initiator

    def test_active_is_era_mod_two(self):
        edge = HardenedEdgeState(zero(), initiator=True)
        assert edge.active == 0
        # Drive one full cancellation with a follower.
        follower = HardenedEdgeState(zero(), initiator=False)
        edge.receive(follower.payload())  # zero passives mirror -> cancel
        assert edge.era == 1
        assert edge.active == 1

    def test_follower_never_cancels(self):
        initiator = HardenedEdgeState(zero(), initiator=True)
        follower = HardenedEdgeState(zero(), initiator=False)
        effect = follower.receive(initiator.payload())
        assert not effect.cancelled
        assert follower.era == 0

    def test_catch_up_via_frozen_value(self):
        initiator = HardenedEdgeState(zero(), initiator=True)
        follower = HardenedEdgeState(zero(), initiator=False)
        initiator.add_to_active(MassPair(4.0, 2.0))
        # follower repairs active + passive from initiator's message.
        follower.receive(initiator.payload())
        assert follower.flow(0).value == -4.0
        # initiator receives mirror -> cancels (zero passives mirror too).
        effect = initiator.receive(follower.payload())
        assert effect.cancelled
        assert initiator.era == 1
        # follower catches up through the frozen value.
        effect = follower.receive(initiator.payload())
        assert effect.swapped
        assert follower.era == 1
        # The frozen values at the two ends are exactly opposite.
        assert initiator.payload().frozen.exactly_equals(
            -follower.payload().frozen
        )

    def test_stale_message_dropped_by_follower(self):
        initiator = HardenedEdgeState(zero(), initiator=True)
        follower = HardenedEdgeState(zero(), initiator=False)
        stale = follower.payload()
        initiator.receive(follower.payload())  # cancel -> era 1
        follower.receive(initiator.payload())  # catch up -> era 1
        era = follower.era
        # era-0 message to the era-1 follower: dropped whole.
        effect = follower.receive(stale)
        assert follower.era == era
        assert effect.phi_delta_efficient.is_zero()

    def test_corrupt_era_dropped(self):
        edge = HardenedEdgeState(zero(), initiator=True)
        bogus = PCFHPayload(
            flow_a=MassPair(1.0, 1.0),
            flow_b=MassPair(0.0, 0.0),
            era=17,
            frozen=MassPair(0.0, 0.0),
        )
        effect = edge.receive(bogus)
        assert edge.era == 0
        assert effect.phi_delta_efficient.is_zero()

    def test_initiator_refreshes_reference_from_boundary_message(self):
        initiator = HardenedEdgeState(zero(), initiator=True)
        follower = HardenedEdgeState(zero(), initiator=False)
        # Advance to era 1 at the initiator only.
        initiator.receive(follower.payload())
        assert initiator.era == 1 and follower.era == 0
        # The follower pushes halves into its (old-era) active slot and the
        # message crosses the cancellation.
        follower.add_to_active(MassPair(3.0, 1.5))
        effect = initiator.receive(follower.payload())
        # Reference (initiator's current passive, slot 0) refreshed.
        assert initiator.flow(0).value == -3.0
        assert initiator.era == 1  # no era change

    def test_era_skew_never_exceeds_one(self):
        rng = np.random.default_rng(0)
        a = HardenedEdgeState(zero(), initiator=True)
        b = HardenedEdgeState(zero(), initiator=False)
        for _ in range(300):
            src, dst = (a, b) if rng.random() < 0.5 else (b, a)
            src.add_to_active(MassPair(float(rng.uniform(-1, 1)), 1.0))
            if rng.random() < 0.7:  # 30% loss
                dst.receive(src.payload())
            assert abs(a.era - b.era) <= 1
            # The follower is never ahead.
            assert b.era <= a.era


class TestNodeLevel:
    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            PushCancelFlowHardened(0, [1], MassPair(1.0, 1.0), variant="fast")

    @pytest.mark.parametrize("variant", ["efficient", "robust"])
    def test_two_nodes_converge(self, variant):
        a, b = make_pair(variant)
        for _ in range(100):
            ping(a, b)
            ping(b, a)
        assert a.estimate() == pytest.approx(4.0, rel=1e-12)
        assert b.estimate() == pytest.approx(4.0, rel=1e-12)

    def test_mass_conserved_exactly_under_loss(self):
        # The hardened claim: cancellations close exactly even when
        # arbitrary messages are lost, so after a settling exchange the
        # total mass is exact (not just approximately recovered).
        rng = np.random.default_rng(3)
        a, b = make_pair()
        for _ in range(200):
            src, dst = (a, b) if rng.random() < 0.5 else (b, a)
            payload = src.make_message(dst.node_id)
            if rng.random() < 0.6:
                dst.on_receive(src.node_id, payload)
        for _ in range(6):
            ping(a, b)
            ping(b, a)
        total = a.estimate_pair() + b.estimate_pair()
        assert total.value == pytest.approx(8.0, rel=1e-12)
        assert total.weight == pytest.approx(2.0, rel=1e-12)

    def test_cancellations_and_catch_ups_counted(self):
        a, b = make_pair()
        for _ in range(30):
            ping(a, b)
            ping(b, a)
        assert a.cancellations > 0  # node 0 is the initiator
        assert b.catch_ups > 0
        assert b.cancellations == 0  # the follower never cancels

    def test_link_failure_handling(self):
        a = PushCancelFlowHardened(0, [1, 2], MassPair(2.0, 1.0))
        peer = PushCancelFlowHardened(1, [0], MassPair(4.0, 1.0))
        a.on_receive(1, peer.make_message(0))
        a.on_link_failed(1)
        assert a.neighbors == (2,)
        assert 1 not in a.local_flows()

    def test_flows_stay_small(self):
        a, b = make_pair()
        for _ in range(300):
            ping(a, b)
            ping(b, a)
        assert a.max_flow_magnitude() < 20.0

    def test_vector_payloads(self):
        a = PushCancelFlowHardened(0, [1], MassPair(np.array([2.0, 0.0]), 1.0))
        b = PushCancelFlowHardened(1, [0], MassPair(np.array([6.0, 4.0]), 1.0))
        for _ in range(100):
            ping(a, b)
            ping(b, a)
        np.testing.assert_allclose(a.estimate(), [4.0, 2.0], rtol=1e-12)

    def test_memory_flip_heals_in_robust_variant(self):
        a, b = make_pair("robust")
        for _ in range(10):
            ping(a, b)
            ping(b, a)
        a.inject_flow_bit_flip(1, 45, slot=0)
        for _ in range(10):
            ping(b, a)
            ping(a, b)
        total = a.estimate_pair() + b.estimate_pair()
        assert total.value == pytest.approx(8.0, rel=1e-9)
