"""Registry snapshot/merge: the cross-process aggregation wire format.

Campaign workers ship ``MetricsRegistry.snapshot()`` dicts back over the
result channel and the parent folds them in with ``merge``; live
``/metrics`` totals are only trustworthy if that round trip is exact
(counters sum, gauges last-write-wins, histograms bucket-wise) and
refuses to approximate (mismatched bucket bounds). DESIGN.md §5f.
"""

import json
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.telemetry import (
    SNAPSHOT_FORMAT,
    MetricsRegistry,
    parse_prometheus_text,
)


def worker_registry(rounds=5.0, drift=1e-9, ts=100.0):
    reg = MetricsRegistry()
    reg.counter("rounds_total", "rounds").inc(rounds, algorithm="push_flow")
    reg.gauge("drift", "mass drift").set_at(drift, ts, algorithm="push_flow")
    hist = reg.histogram("kernel_s", "kernel", buckets=[0.1, 1.0])
    hist.observe(0.05, engine="batched")
    hist.observe(0.5, engine="batched")
    return reg


class TestSnapshot:
    def test_format_tag_and_json_round_trip(self):
        snap = worker_registry().snapshot()
        assert snap["format"] == SNAPSHOT_FORMAT
        assert json.loads(json.dumps(snap)) == snap

    def test_disabled_registry_snapshots_empty(self):
        assert MetricsRegistry(enabled=False).snapshot()["metrics"] == []

    def test_histogram_slots_carry_raw_buckets(self):
        snap = worker_registry().snapshot()
        (hist,) = [m for m in snap["metrics"] if m["name"] == "kernel_s"]
        (slot,) = hist["samples"]
        # Raw per-bucket counts (not cumulative): 0.05 -> first bucket,
        # 0.5 -> second, nothing overflowed.
        assert slot["buckets"] == [1, 1, 0]
        assert slot["count"] == 2
        assert slot["sum"] == pytest.approx(0.55)


class TestMerge:
    def test_counters_sum_exactly(self):
        parent = MetricsRegistry()
        parent.merge(worker_registry(rounds=3.0).snapshot())
        parent.merge(worker_registry(rounds=4.0).snapshot())
        counter = parent.counter("rounds_total")
        assert counter.value(algorithm="push_flow") == 7.0

    def test_gauges_last_write_wins_by_timestamp(self):
        newer = worker_registry(drift=2e-9, ts=200.0).snapshot()
        older = worker_registry(drift=1e-9, ts=100.0).snapshot()
        parent = MetricsRegistry()
        parent.merge(newer)
        parent.merge(older)  # arrival order must not matter
        assert parent.gauge("drift").value(algorithm="push_flow") == 2e-9

    def test_histograms_merge_bucket_wise(self):
        parent = MetricsRegistry()
        parent.merge(worker_registry().snapshot())
        parent.merge(worker_registry().snapshot())
        snap = parent.histogram("kernel_s", buckets=[0.1, 1.0]).snapshot(
            engine="batched"
        )
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(1.1)
        assert snap["max"] == 0.5
        # Exposition buckets are cumulative: le=0.1 -> 2, le=1.0 -> 4.
        assert snap["buckets"] == [(0.1, 2), (1.0, 4), ("+Inf", 4)]

    def test_mismatched_bucket_bounds_rejected(self):
        parent = MetricsRegistry()
        parent.histogram("kernel_s", "kernel", buckets=[0.25, 2.0])
        with pytest.raises(ConfigurationError, match="bounds"):
            parent.merge(worker_registry().snapshot())

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError, match="format"):
            MetricsRegistry().merge({"format": 999, "metrics": []})

    def test_kind_collision_rejected(self):
        parent = MetricsRegistry()
        parent.gauge("rounds_total", "now a gauge")
        with pytest.raises(ConfigurationError):
            parent.merge(worker_registry().snapshot())

    def test_none_and_disabled_are_no_ops(self):
        parent = MetricsRegistry()
        parent.merge(None)
        disabled = MetricsRegistry(enabled=False)
        disabled.merge(worker_registry().snapshot())
        assert disabled.snapshot()["metrics"] == []
        assert parent.snapshot()["metrics"] == []

    def test_serial_equals_split_across_workers(self):
        # The property the campaign integration tests rely on, in
        # miniature: one registry seeing all events == the merge of
        # per-worker registries seeing a partition of them.
        serial = MetricsRegistry()
        for _ in range(3):
            serial.counter("c", "").inc(2.0, k="a")
            serial.histogram("h", "", buckets=[1.0]).observe(0.5, k="a")
        merged = MetricsRegistry()
        for _ in range(3):
            worker = MetricsRegistry()
            worker.counter("c", "").inc(2.0, k="a")
            worker.histogram("h", "", buckets=[1.0]).observe(0.5, k="a")
            merged.merge(worker.snapshot())
        assert (
            serial.counter("c").value(k="a")
            == merged.counter("c").value(k="a")
        )
        assert serial.histogram("h", buckets=[1.0]).snapshot(
            k="a"
        ) == merged.histogram("h", buckets=[1.0]).snapshot(k="a")


class TestPrometheusRoundTrip:
    def test_exposition_parses_strictly(self):
        reg = worker_registry()
        reg.gauge("weird", "label escaping").set(
            1.0, path='a"b\\c', note="x,y"
        )
        samples = parse_prometheus_text(reg.to_prometheus())
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["rounds_total"] == [({"algorithm": "push_flow"}, 5.0)]
        assert by_name["weird"] == [({"path": 'a"b\\c', "note": "x,y"}, 1.0)]
        assert ({"engine": "batched", "le": "+Inf"}, 2.0) in by_name[
            "kernel_s_bucket"
        ]

    def test_non_finite_scalars_dropped_from_exposition(self):
        reg = MetricsRegistry()
        reg.gauge("g", "gauge").set(float("nan"), k="bad")
        reg.gauge("g", "gauge").set(1.5, k="good")
        hist = reg.histogram("h", "hist", buckets=[1.0])
        hist.observe(float("inf"))
        text = reg.to_prometheus()
        samples = parse_prometheus_text(text)  # must not raise
        names = {name for name, _labels, _v in samples}
        assert ({"k": "good"}, 1.5) in [
            (labels, v) for name, labels, v in samples if name == "g"
        ]
        assert not any(
            labels.get("k") == "bad" for name, labels, _v in samples
        )
        # The inf observation poisons _sum (dropped) but not the counts.
        assert "h_sum" not in names
        assert "h_count" in names and "h_bucket" in names

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text("not a metric line at all {")
        with pytest.raises(ValueError, match="unterminated label quote"):
            parse_prometheus_text('m{unclosed="x} 1.0')


class TestThreadSafety:
    def test_concurrent_writers_lose_no_updates(self):
        # Scrapes run on server threads while the runner merges worker
        # snapshots; families are lock-protected so compound
        # read-modify-write updates must never be lost.
        reg = MetricsRegistry()
        counter = reg.counter("hits", "hammered")
        hist = reg.histogram("lat", "hammered", buckets=[0.5])
        threads_n, per_thread = 8, 2000
        start = threading.Barrier(threads_n + 1)

        def hammer():
            start.wait()
            for _ in range(per_thread):
                counter.inc(worker="w")
                hist.observe(0.25, worker="w")

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        start.wait()
        for _ in range(50):  # concurrent readers must not corrupt state
            reg.snapshot()
            parse_prometheus_text(reg.to_prometheus())
        for t in threads:
            t.join()
        expected = float(threads_n * per_thread)
        assert counter.value(worker="w") == expected
        assert hist.snapshot(worker="w")["count"] == expected
