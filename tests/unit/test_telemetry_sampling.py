"""Tests for the shared round-sampling policy and its engine contract.

The sampling layer's load-bearing promise is twofold: (1) every telemetry
consumer thins on the *same* deterministic stride, so sampled traces stay
diff-able across paired runs, and (2) message totals never degrade —
unsampled rounds report their counts through the batched
``on_round_messages`` hook, so counters stay exact while per-message
detail is skipped.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.observers import Observer
from repro.telemetry.sampling import (
    ALWAYS,
    DEFAULT_SAMPLE_EVERY,
    RoundSampler,
    resolve_sampler,
)
from repro.topology import ring
from tests.conftest import build_engine


class TestRoundSampler:
    def test_stride_one_samples_everything(self):
        sampler = RoundSampler(every=1)
        assert all(sampler.sample(r) for r in range(100))

    def test_stride_samples_multiples_and_round_zero(self):
        sampler = RoundSampler(every=8)
        sampled = [r for r in range(32) if sampler.sample(r)]
        assert sampled == [0, 8, 16, 24]

    def test_rate_converts_to_stride(self):
        assert RoundSampler(rate=0.125).stride == 8
        assert RoundSampler(rate=1.0).stride == 1
        # Rates that don't divide evenly round to the nearest stride.
        assert RoundSampler(rate=0.3).stride == 3

    def test_effective_rate_property(self):
        assert RoundSampler(every=4).rate == 0.25

    def test_default_no_thinning(self):
        assert RoundSampler().stride == 1

    @pytest.mark.parametrize("rate", [0.0, -0.5, 1.5])
    def test_rate_out_of_range_rejected(self, rate):
        with pytest.raises(ConfigurationError):
            RoundSampler(rate=rate)

    def test_every_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundSampler(every=0)

    def test_both_styles_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundSampler(every=4, rate=0.25)

    def test_equality_and_hash_by_stride(self):
        assert RoundSampler(every=8) == RoundSampler(rate=0.125)
        assert RoundSampler(every=8) != RoundSampler(every=4)
        assert hash(RoundSampler(every=8)) == hash(RoundSampler(rate=0.125))

    def test_always_constant(self):
        assert ALWAYS.stride == 1

    def test_default_stride_matches_bench_budget(self):
        # BENCH_engine.json's overhead_sampled entries are measured at this
        # stride; changing it invalidates the committed numbers.
        assert DEFAULT_SAMPLE_EVERY == 8


class TestResolveSampler:
    def test_explicit_sampler_wins(self):
        sampler = RoundSampler(every=4)
        assert resolve_sampler(sampler) is sampler

    def test_sampler_plus_kwargs_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_sampler(RoundSampler(every=4), every=2)
        with pytest.raises(ConfigurationError):
            resolve_sampler(RoundSampler(every=4), rate=0.5)

    def test_kwargs_build_a_sampler(self):
        assert resolve_sampler(every=6).stride == 6
        assert resolve_sampler(rate=0.5).stride == 2

    def test_nothing_given_samples_every_round(self):
        assert resolve_sampler().stride == 1


class _SampledCounter(Observer):
    """Counts messages the way a sampled telemetry observer must: detail
    hooks on sampled rounds, the batched hook everywhere else."""

    def __init__(self, sampler):
        self._sampler = sampler
        self.detail_sent = 0
        self.batched_sent = 0
        self.batched_delivered = 0
        self.delivered = 0
        self.detail_rounds = set()

    def wants_detail(self, round_index):
        return self._sampler.sample(round_index)

    def on_message_sent(self, engine, message):
        self.detail_sent += 1
        self.detail_rounds.add(message.round)

    def on_message_delivered(self, engine, message):
        self.delivered += 1

    def on_round_messages(self, engine, round_index, sent, delivered):
        assert not self._sampler.sample(round_index)
        self.batched_sent += sent
        self.batched_delivered += delivered


class TestSampledTotalsStayExact:
    def test_message_totals_equal_engine_counters(self):
        topo = ring(8)
        counter = _SampledCounter(RoundSampler(every=4))
        engine, _ = build_engine(
            topo, "push_flow", [float(i) for i in range(8)],
            observers=[counter],
        )
        engine.run(21)
        assert counter.detail_sent + counter.batched_sent == engine.messages_sent
        assert (
            counter.delivered + counter.batched_delivered
            == engine.messages_delivered
        )
        # Per-message hooks fired only on sampled rounds.
        assert counter.detail_rounds == {0, 4, 8, 12, 16, 20}
        # Both paths genuinely carried traffic on a 21-round run.
        assert counter.detail_sent > 0
        assert counter.batched_sent > 0

    def test_full_sampling_uses_detail_path_only(self):
        topo = ring(8)
        counter = _SampledCounter(ALWAYS)
        engine, _ = build_engine(
            topo, "push_sum", [1.0] * 8, observers=[counter]
        )
        engine.run(10)
        assert counter.batched_sent == 0
        assert counter.detail_sent == engine.messages_sent
