"""Unit tests for the algorithm registry and communication schedules."""

import pytest

from repro.algorithms.push_cancel_flow import PushCancelFlow
from repro.algorithms.push_flow import PushFlow
from repro.algorithms.push_sum import PushSum
from repro.algorithms.registry import ALGORITHMS, factory, instantiate
from repro.algorithms.state import MassPair
from repro.exceptions import ConfigurationError
from repro.simulation.schedule import (
    FixedSchedule,
    RoundRobinSchedule,
    UniformGossipSchedule,
)
from repro.topology import ring


class TestRegistry:
    def test_algorithms_list(self):
        assert "push_sum" in ALGORITHMS
        assert "push_flow" in ALGORITHMS
        assert "push_cancel_flow" in ALGORITHMS

    def test_factory_types(self):
        init = MassPair(1.0, 1.0)
        assert isinstance(factory("push_sum")(0, [1], init), PushSum)
        assert isinstance(factory("push_flow")(0, [1], init), PushFlow)
        pcf = factory("push_cancel_flow")(0, [1], init)
        assert isinstance(pcf, PushCancelFlow)
        assert pcf.variant == "efficient"
        assert factory("push_cancel_flow_robust")(0, [1], init).variant == "robust"
        assert factory("push_flow_incremental")(0, [1], init).variant == "incremental"

    def test_factory_unknown(self):
        with pytest.raises(ConfigurationError):
            factory("push_pull")

    def test_instantiate_builds_per_node(self):
        topo = ring(5)
        algs = instantiate("push_sum", topo, [MassPair(float(i), 1.0) for i in topo])
        assert len(algs) == 5
        assert [a.node_id for a in algs] == list(range(5))
        assert algs[2].neighbors == topo.neighbors(2)

    def test_instantiate_length_check(self):
        with pytest.raises(ConfigurationError):
            instantiate("push_sum", ring(5), [MassPair(1.0, 1.0)] * 4)


class TestUniformGossipSchedule:
    def test_choices_are_neighbors(self):
        topo = ring(8)
        schedule = UniformGossipSchedule(topo.n, seed=1)
        for round_index in range(20):
            for node in topo.nodes():
                choice = schedule.choose(node, topo.neighbors(node), round_index)
                assert choice in topo.neighbors(node)

    def test_deterministic_given_seed(self):
        topo = ring(8)
        a = UniformGossipSchedule(topo.n, seed=7)
        b = UniformGossipSchedule(topo.n, seed=7)
        for round_index in range(50):
            for node in topo.nodes():
                assert a.choose(node, topo.neighbors(node), round_index) == b.choose(
                    node, topo.neighbors(node), round_index
                )

    def test_different_seeds_differ(self):
        topo = ring(8)
        a = UniformGossipSchedule(topo.n, seed=7)
        b = UniformGossipSchedule(topo.n, seed=8)
        choices_a = [a.choose(0, topo.neighbors(0), t) for t in range(64)]
        choices_b = [b.choose(0, topo.neighbors(0), t) for t in range(64)]
        assert choices_a != choices_b

    def test_per_node_streams_independent(self):
        # One node's draw count must not perturb another node's stream.
        topo = ring(8)
        a = UniformGossipSchedule(topo.n, seed=3)
        b = UniformGossipSchedule(topo.n, seed=3)
        # Schedule a: draw node 0 five extra times first.
        for _ in range(5):
            a.choose(0, topo.neighbors(0), 0)
        assert a.choose(1, topo.neighbors(1), 0) == b.choose(
            1, topo.neighbors(1), 0
        )

    def test_empty_neighborhood_silent(self):
        schedule = UniformGossipSchedule(4, seed=0)
        assert schedule.choose(0, [], 0) is None

    def test_reset_rewinds(self):
        topo = ring(6)
        schedule = UniformGossipSchedule(topo.n, seed=5)
        first = [schedule.choose(2, topo.neighbors(2), t) for t in range(10)]
        schedule.reset()
        second = [schedule.choose(2, topo.neighbors(2), t) for t in range(10)]
        assert first == second

    def test_roughly_uniform(self):
        schedule = UniformGossipSchedule(1, seed=11)
        neighbors = (10, 20, 30, 40)
        counts = {j: 0 for j in neighbors}
        for t in range(4000):
            counts[schedule.choose(0, neighbors, t)] += 1
        for j in neighbors:
            assert 800 < counts[j] < 1200

    def test_bad_n(self):
        with pytest.raises(ConfigurationError):
            UniformGossipSchedule(0, seed=0)


class TestRoundRobinSchedule:
    def test_cycles_in_order(self):
        schedule = RoundRobinSchedule(1)
        neighbors = (3, 5, 9)
        chosen = [schedule.choose(0, neighbors, t) for t in range(6)]
        assert chosen == [3, 5, 9, 3, 5, 9]

    def test_reset(self):
        schedule = RoundRobinSchedule(1)
        schedule.choose(0, (1, 2), 0)
        schedule.reset()
        assert schedule.choose(0, (1, 2), 0) == 1

    def test_adapts_to_shrunk_neighborhood(self):
        schedule = RoundRobinSchedule(1)
        for _ in range(3):
            schedule.choose(0, (1, 2, 3), 0)
        assert schedule.choose(0, (1, 2), 0) in (1, 2)


class TestFixedSchedule:
    def test_scripted_targets(self):
        schedule = FixedSchedule([[1, None], [None, 0]])
        assert schedule.choose(0, (1,), 0) == 1
        assert schedule.choose(1, (0,), 0) is None
        assert schedule.choose(1, (0,), 1) == 0

    def test_exhausted_script_is_silent(self):
        schedule = FixedSchedule([[1]])
        assert schedule.choose(0, (1,), 5) is None

    def test_non_neighbor_target_suppressed(self):
        schedule = FixedSchedule([[2]])
        assert schedule.choose(0, (1,), 0) is None
