"""Unit tests for the stdlib columnar Frame behind the analysis layer."""

import pytest

from repro.analysis.campaigns.frame import Frame, pandas_available
from repro.exceptions import ExperimentError

RECORDS = [
    {"algorithm": "push_sum", "fault": "none", "err": 1e-9, "seed": 0},
    {"algorithm": "push_flow", "fault": "none", "err": 1e-7, "seed": 0},
    {"algorithm": "push_sum", "fault": "churn", "err": 1e-2, "seed": 1},
    {"algorithm": "push_flow", "fault": "churn", "err": 1e-4, "seed": 1},
]


class TestConstruction:
    def test_from_records_unions_keys(self):
        frame = Frame.from_records(
            [{"a": 1}, {"b": 2}],
        )
        assert frame.columns == ("a", "b")
        assert frame.row(0) == {"a": 1, "b": None}
        assert frame.row(1) == {"a": None, "b": 2}

    def test_explicit_columns_fix_order_and_fill(self):
        frame = Frame.from_records([{"b": 2}], columns=("a", "b", "c"))
        assert frame.columns == ("a", "b", "c")
        assert frame.row(0) == {"a": None, "b": 2, "c": None}

    def test_ragged_columns_rejected(self):
        with pytest.raises(ExperimentError):
            Frame({"a": [1, 2], "b": [1]})

    def test_empty(self):
        frame = Frame.from_records([])
        assert len(frame) == 0
        assert frame.columns == ()


class TestOps:
    def test_where_and_filter(self):
        frame = Frame.from_records(RECORDS)
        churn = frame.where(fault="churn")
        assert len(churn) == 2
        assert set(churn.column("algorithm")) == {"push_sum", "push_flow"}
        small = frame.filter(lambda r: r["err"] < 1e-5)
        assert len(small) == 2
        assert len(frame.filter(lambda r: r["err"] < 1e-3)) == 3

    def test_unique_sorted(self):
        frame = Frame.from_records(RECORDS)
        assert frame.unique("algorithm") == ["push_flow", "push_sum"]

    def test_sort_by(self):
        frame = Frame.from_records(RECORDS).sort_by("fault", "algorithm")
        assert frame.column("fault") == ["churn", "churn", "none", "none"]

    def test_groupby_keys_and_sizes(self):
        frame = Frame.from_records(RECORDS)
        groups = dict(
            (key, len(g)) for key, g in frame.groupby("fault")
        )
        assert groups == {("churn",): 2, ("none",): 2}

    def test_with_column(self):
        frame = Frame.from_records(RECORDS).with_column(
            "big", [e > 1e-5 for e in [1e-9, 1e-7, 1e-2, 1e-4]]
        )
        assert frame.column("big") == [False, False, True, True]

    def test_select(self):
        frame = Frame.from_records(RECORDS).select("err", "algorithm")
        assert frame.columns == ("err", "algorithm")
        assert len(frame) == len(RECORDS)

    def test_missing_column_raises(self):
        frame = Frame.from_records(RECORDS)
        with pytest.raises(ExperimentError):
            frame.column("nope")


class TestExports:
    def test_to_csv_roundtrip_shape(self):
        csv_text = Frame.from_records(RECORDS).to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "algorithm,fault,err,seed"
        assert len(lines) == 1 + len(RECORDS)

    def test_to_pandas_gated(self):
        frame = Frame.from_records(RECORDS)
        if pandas_available():
            df = frame.to_pandas()
            assert list(df.columns) == list(frame.columns)
            assert len(df) == len(frame)
        else:
            with pytest.raises(ExperimentError):
                frame.to_pandas()
