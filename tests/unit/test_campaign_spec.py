"""Campaign spec validation, file loading and cross-product expansion."""

import json

import pytest

from repro.campaigns import BUILTIN_SPECS, CampaignSpec, load_spec
from repro.exceptions import ConfigurationError


def minimal_spec(**overrides):
    raw = {
        "name": "t",
        "algorithms": ["push_flow"],
        "topologies": [{"family": "hypercube", "n": 8}],
        "faults": [{"kind": "none"}],
        "seeds": [0],
        "rounds": 10,
        "epsilon": 1e-6,
    }
    raw.update(overrides)
    return raw


class TestValidation:
    def test_minimal_spec_parses(self):
        spec = CampaignSpec.from_dict(minimal_spec())
        assert spec.name == "t"
        assert spec.n_cells == 1

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            CampaignSpec.from_dict(minimal_spec(topology=[]))

    def test_missing_axis_rejected(self):
        raw = minimal_spec()
        del raw["seeds"]
        with pytest.raises(ConfigurationError, match="missing axis"):
            CampaignSpec.from_dict(raw)

    @pytest.mark.parametrize("axis", ["algorithms", "topologies", "faults", "seeds"])
    def test_empty_axis_names_the_axis(self, axis):
        with pytest.raises(ConfigurationError, match=f"axis '{axis}' is empty"):
            CampaignSpec.from_dict(minimal_spec(**{axis: []}))

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            CampaignSpec.from_dict(minimal_spec(algorithms=["push_pull"]))

    def test_unknown_topology_family_rejected(self):
        with pytest.raises(ConfigurationError, match="topologies"):
            CampaignSpec.from_dict(
                minimal_spec(topologies=[{"family": "moebius", "n": 8}])
            )

    def test_bad_topology_params_fail_at_parse_time(self):
        # hypercube needs a power-of-two node count; the dry-build catches it
        with pytest.raises(ConfigurationError, match="topologies"):
            CampaignSpec.from_dict(
                minimal_spec(topologies=[{"family": "hypercube", "n": 9}])
            )

    def test_bad_fault_spec_names_the_entry(self):
        with pytest.raises(ConfigurationError, match="faults.*\\[1\\]"):
            CampaignSpec.from_dict(
                minimal_spec(faults=[{"kind": "none"}, {"kind": "bogus"}])
            )

    def test_duplicate_fault_names_rejected(self):
        faults = [
            {"kind": "message_loss", "rate": 0.1},
            {"kind": "message_loss", "rate": 0.1},
        ]
        with pytest.raises(ConfigurationError, match="duplicate"):
            CampaignSpec.from_dict(minimal_spec(faults=faults))

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ConfigurationError, match="seeds"):
            CampaignSpec.from_dict(minimal_spec(seeds=[1, 1]))

    def test_bad_rounds_epsilon_aggregate_data(self):
        with pytest.raises(ConfigurationError, match="rounds"):
            CampaignSpec.from_dict(minimal_spec(rounds=0))
        with pytest.raises(ConfigurationError, match="epsilon"):
            CampaignSpec.from_dict(minimal_spec(epsilon=2.0))
        with pytest.raises(ConfigurationError, match="aggregate"):
            CampaignSpec.from_dict(minimal_spec(aggregate="median"))
        with pytest.raises(ConfigurationError, match="data"):
            CampaignSpec.from_dict(minimal_spec(data="gaussian"))


class TestExpansion:
    def test_cell_count_is_axis_product(self):
        spec = CampaignSpec.from_dict(
            minimal_spec(
                algorithms=["push_flow", "push_cancel_flow"],
                topologies=[
                    {"family": "hypercube", "n": 8},
                    {"family": "ring", "n": 8},
                ],
                faults=[{"kind": "none"}, {"kind": "message_loss", "rate": 0.1}],
                seeds=[0, 1, 2],
            )
        )
        cells = spec.expand()
        assert len(cells) == spec.n_cells == 2 * 2 * 2 * 3

    def test_cell_ids_are_unique_and_stable(self):
        raw = minimal_spec(
            algorithms=["push_flow", "push_sum"], seeds=[0, 1]
        )
        first = [c["cell_id"] for c in CampaignSpec.from_dict(raw).expand()]
        second = [c["cell_id"] for c in CampaignSpec.from_dict(raw).expand()]
        assert first == second
        assert len(set(first)) == len(first)
        assert "push_flow|hypercube-8|none|s0" in first

    def test_cells_are_plain_and_json_serializable(self):
        spec = CampaignSpec.from_dict(minimal_spec())
        for cell in spec.expand():
            json.dumps(cell)  # must cross process boundaries

    def test_roundtrip_through_to_dict(self):
        spec = CampaignSpec.from_dict(minimal_spec())
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again == spec


class TestFiles:
    def test_toml_roundtrip(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text(
            "\n".join(
                [
                    'name = "toml-campaign"',
                    'algorithms = ["push_flow"]',
                    "seeds = [0, 1]",
                    "rounds = 10",
                    "epsilon = 1e-6",
                    "",
                    "[[topologies]]",
                    'family = "hypercube"',
                    "n = 8",
                    "",
                    "[[faults]]",
                    'kind = "link_failure"',
                    "round = 5",
                ]
            )
        )
        spec = CampaignSpec.from_file(path)
        assert spec.name == "toml-campaign"
        assert spec.n_cells == 2

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(minimal_spec()))
        assert CampaignSpec.from_file(path).n_cells == 1

    def test_missing_file_and_bad_suffix(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            CampaignSpec.from_file(tmp_path / "nope.toml")
        bad = tmp_path / "c.yaml"
        bad.write_text("x: 1")
        with pytest.raises(ConfigurationError, match="toml or"):
            CampaignSpec.from_file(bad)

    def test_invalid_toml_reports_path(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("name = [unclosed")
        with pytest.raises(ConfigurationError, match="invalid TOML"):
            CampaignSpec.from_file(path)


class TestLoadSpec:
    def test_builtin_names_resolve(self):
        for name in BUILTIN_SPECS:
            spec = load_spec(name)
            assert spec.n_cells >= 1

    def test_dict_passthrough(self):
        assert load_spec(minimal_spec()).name == "t"

    def test_unknown_source_lists_builtins(self):
        with pytest.raises(ConfigurationError, match="fig4-recovery"):
            load_spec("no-such-campaign")

    def test_smoke_builtin_is_ci_sized(self):
        spec = load_spec("smoke")
        assert spec.n_cells == 4
        assert all(t["n"] <= 16 for t in spec.topologies)


class TestTelemetrySampleRate:
    def test_default_is_unset(self):
        spec = CampaignSpec.from_dict(minimal_spec())
        assert spec.telemetry_sample_rate is None
        assert spec.expand()[0]["telemetry_sample_rate"] is None

    def test_valid_rate_propagates_to_every_cell(self):
        spec = CampaignSpec.from_dict(
            minimal_spec(telemetry_sample_rate=0.125, seeds=[0, 1])
        )
        assert spec.telemetry_sample_rate == 0.125
        assert all(
            cell["telemetry_sample_rate"] == 0.125 for cell in spec.expand()
        )
        assert spec.to_dict()["telemetry_sample_rate"] == 0.125

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5, "fast"])
    def test_out_of_range_rate_rejected(self, rate):
        with pytest.raises(ConfigurationError, match="telemetry_sample_rate"):
            CampaignSpec.from_dict(minimal_spec(telemetry_sample_rate=rate))
