"""Unit tests for repro.algorithms.state (MassPair)."""

import math

import numpy as np
import pytest

from repro.algorithms.state import MassPair, total_mass, zero_pair


class TestConstruction:
    def test_scalar(self):
        pair = MassPair(2.5, 1.0)
        assert pair.value == 2.5
        assert pair.weight == 1.0
        assert not pair.is_vector
        assert pair.dimension == 1

    def test_vector(self):
        pair = MassPair(np.array([1.0, 2.0]), 0.5)
        assert pair.is_vector
        assert pair.dimension == 2
        np.testing.assert_array_equal(pair.value, [1.0, 2.0])

    def test_vector_is_copied_on_input(self):
        source = np.array([1.0, 2.0])
        pair = MassPair(source, 1.0)
        source[0] = 99.0
        assert pair.value[0] == 1.0

    def test_vector_accessor_returns_copy(self):
        pair = MassPair(np.array([1.0]), 1.0)
        view = pair.value
        view[0] = 99.0
        assert pair.value[0] == 1.0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            MassPair(np.zeros((2, 2)), 1.0)


class TestArithmetic:
    def test_add_sub_neg_scalar(self):
        a = MassPair(3.0, 1.0)
        b = MassPair(1.0, 0.5)
        assert (a + b).value == 4.0
        assert (a + b).weight == 1.5
        assert (a - b).value == 2.0
        assert (-a).value == -3.0
        assert (-a).weight == -1.0

    def test_add_vector(self):
        a = MassPair(np.array([1.0, 2.0]), 1.0)
        b = MassPair(np.array([0.5, -2.0]), 2.0)
        total = a + b
        np.testing.assert_array_equal(total.value, [1.5, 0.0])
        assert total.weight == 3.0

    def test_half_is_exact(self):
        pair = MassPair(3.0, 1.0)
        half = pair.half()
        assert half.value == 1.5
        assert half.weight == 0.5
        # Power-of-two scaling is lossless: doubling recovers exactly.
        assert half.value * 2 == pair.value

    def test_mixed_shapes_rejected(self):
        with pytest.raises(ValueError):
            MassPair(1.0, 1.0) + MassPair(np.array([1.0]), 1.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MassPair(np.array([1.0]), 1.0) + MassPair(np.array([1.0, 2.0]), 1.0)

    def test_non_masspair_rejected(self):
        with pytest.raises(TypeError):
            MassPair(1.0, 1.0) + 3  # type: ignore[operator]

    def test_scaled(self):
        pair = MassPair(2.0, 4.0).scaled(0.25)
        assert pair.value == 0.5
        assert pair.weight == 1.0


class TestComparisons:
    def test_exactly_equals(self):
        assert MassPair(1.0, 2.0).exactly_equals(MassPair(1.0, 2.0))
        # A one-ulp perturbation must break exact equality.
        assert not MassPair(1.0, 2.0).exactly_equals(
            MassPair(float(np.nextafter(1.0, 2.0)), 2.0)
        )

    def test_exactly_equals_vector(self):
        a = MassPair(np.array([1.0, -0.0]), 0.0)
        b = MassPair(np.array([1.0, 0.0]), 0.0)
        assert a.exactly_equals(b)  # -0.0 == 0.0 in IEEE comparison

    def test_exactly_equals_shape_mismatch(self):
        assert not MassPair(1.0, 0.0).exactly_equals(MassPair(np.array([1.0]), 0.0))

    def test_is_zero(self):
        assert MassPair(0.0, 0.0).is_zero()
        assert not MassPair(0.0, 1.0).is_zero()
        assert MassPair(np.zeros(3), 0.0).is_zero()

    def test_is_finite(self):
        assert MassPair(1.0, 1.0).is_finite()
        assert not MassPair(float("inf"), 1.0).is_finite()
        assert not MassPair(1.0, float("nan")).is_finite()
        assert not MassPair(np.array([1.0, float("nan")]), 1.0).is_finite()


class TestRatio:
    def test_scalar_ratio(self):
        assert MassPair(6.0, 2.0).ratio() == 3.0

    def test_vector_ratio(self):
        pair = MassPair(np.array([2.0, 4.0]), 2.0)
        np.testing.assert_array_equal(pair.ratio(), [1.0, 2.0])

    def test_zero_weight_gives_inf(self):
        assert MassPair(1.0, 0.0).ratio() == math.inf
        assert MassPair(-1.0, 0.0).ratio() == -math.inf

    def test_zero_over_zero_gives_nan(self):
        assert math.isnan(MassPair(0.0, 0.0).ratio())

    def test_vector_zero_weight(self):
        ratio = MassPair(np.array([1.0, -1.0]), 0.0).ratio()
        assert np.isinf(ratio).all()


class TestMagnitudeAndZero:
    def test_magnitude_scalar(self):
        assert MassPair(-3.0, 1.0).magnitude() == 3.0
        assert MassPair(0.5, -4.0).magnitude() == 4.0

    def test_magnitude_vector(self):
        assert MassPair(np.array([1.0, -5.0]), 2.0).magnitude() == 5.0

    def test_zero_like(self):
        z = MassPair(np.array([1.0, 2.0]), 3.0).zero_like()
        assert z.is_zero()
        assert z.dimension == 2

    def test_zero_pair_factory(self):
        assert zero_pair().dimension == 1
        assert zero_pair(4).dimension == 4
        assert zero_pair(4).is_zero()
        with pytest.raises(ValueError):
            zero_pair(0)


class TestTotalMass:
    def test_sum(self):
        pairs = [MassPair(1.0, 1.0), MassPair(2.0, 0.0), MassPair(-1.0, 2.0)]
        total = total_mass(pairs)
        assert total.value == 2.0
        assert total.weight == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            total_mass([])

    def test_does_not_mutate_inputs(self):
        first = MassPair(1.0, 1.0)
        total_mass([first, MassPair(2.0, 2.0)])
        assert first.value == 1.0
