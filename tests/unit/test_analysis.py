"""Unit tests for the analysis package (rates, potentials, tree flows)."""

import math

import numpy as np
import pytest

from repro.analysis import (
    compare_to_theory,
    disagreement_potential,
    equilibrium_flows,
    fit_decay_rate,
    is_tree,
    max_equilibrium_flow,
    predicted_rounds,
    spectral_rate_bound,
    subtree_nodes,
    weight_dispersion,
)
from repro.exceptions import ConfigurationError, TopologyError
from repro.experiments.workloads import bus_case_study_data, bus_equilibrium_flows
from repro.topology import binary_tree, bus, complete, hypercube, ring, star


class TestRateFit:
    def test_fits_pure_geometric_decay(self):
        rate = 0.8
        errors = [rate ** t for t in range(100)]
        fit = fit_decay_rate(errors, skip=5, floor=1e-30)
        assert fit.rate == pytest.approx(rate, rel=1e-6)
        assert fit.residual < 1e-10
        assert fit.rounds_per_decade == pytest.approx(
            -1.0 / math.log10(rate), rel=1e-6
        )

    def test_rounds_to(self):
        fit = fit_decay_rate([0.5 ** t for t in range(60)], skip=2, floor=1e-30)
        rounds = fit.rounds_to(1e-6, start=1.0)
        assert rounds == pytest.approx(math.log(1e-6) / math.log(0.5), rel=1e-6)
        with pytest.raises(ConfigurationError):
            fit.rounds_to(2.0)

    def test_non_decaying_series(self):
        fit = fit_decay_rate([0.5] * 50, skip=2, floor=1e-30)
        assert fit.rate == pytest.approx(1.0, abs=1e-9)
        assert fit.rounds_per_decade == math.inf

    def test_floor_exclusion(self):
        errors = [0.5 ** t for t in range(30)] + [1e-16] * 30
        fit = fit_decay_rate(errors, skip=2, floor=1e-9)
        assert fit.rate == pytest.approx(0.5, rel=1e-3)

    def test_too_short(self):
        with pytest.raises(ConfigurationError):
            fit_decay_rate([1.0, 0.5], skip=0)

    def test_all_below_floor(self):
        with pytest.raises(ConfigurationError):
            fit_decay_rate([1e-20] * 30, skip=2, floor=1e-15)


class TestSpectralBounds:
    def test_bound_ordering(self):
        # Better-connected -> faster predicted contraction (smaller rate).
        assert spectral_rate_bound(complete(16)) < spectral_rate_bound(
            hypercube(4)
        ) < spectral_rate_bound(ring(16))

    def test_predicted_rounds_monotone_in_eps(self):
        topo = hypercube(4)
        assert predicted_rounds(topo, 1e-12) > predicted_rounds(topo, 1e-3)

    def test_predicted_rounds_validation(self):
        with pytest.raises(ConfigurationError):
            predicted_rounds(ring(8), 2.0)

    def test_compare_to_theory_keys(self):
        errors = [0.7 ** t for t in range(80)]
        info = compare_to_theory(errors, hypercube(3), skip=5, floor=1e-30)
        assert set(info) >= {
            "measured_rate",
            "spectral_rate_bound",
            "measured_rounds_per_decade",
        }


class TestPotentials:
    def test_disagreement_zero_at_consensus(self):
        assert disagreement_potential([2.0, 2.0, 2.0], 2.0) == 0.0

    def test_disagreement_scales(self):
        assert disagreement_potential([3.0], 2.0) == pytest.approx(0.25)

    def test_nonfinite(self):
        assert disagreement_potential([float("nan")], 2.0) == math.inf

    def test_weight_dispersion(self):
        assert weight_dispersion([1.0, 1.0, 1.0]) == 0.0
        assert weight_dispersion([0.0, 2.0]) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            disagreement_potential([], 1.0)
        with pytest.raises(ValueError):
            weight_dispersion([])


class TestTreeFlows:
    def test_is_tree(self):
        assert is_tree(bus(5))
        assert is_tree(star(6))
        assert is_tree(binary_tree(7))
        assert not is_tree(ring(5))

    def test_subtree_nodes_bus(self):
        topo = bus(5)
        assert subtree_nodes(topo, 1, (1, 2)) == [0, 1]
        assert subtree_nodes(topo, 2, (1, 2)) == [2, 3, 4]

    def test_subtree_rejects_non_edge(self):
        with pytest.raises(TopologyError):
            subtree_nodes(bus(5), 0, (0, 2))

    def test_subtree_rejects_cycle_edge(self):
        with pytest.raises(TopologyError):
            subtree_nodes(ring(5), 0, (0, 1))

    def test_bus_matches_paper_values(self):
        n = 8
        topo = bus(n)
        data = bus_case_study_data(n)
        flows = equilibrium_flows(topo, list(data), [1.0] * n)
        expected = bus_equilibrium_flows(n)
        for i in range(n - 1):
            assert flows[(i, i + 1)] == pytest.approx(expected[i])
            assert flows[(i + 1, i)] == pytest.approx(-expected[i])

    def test_star_flows_are_small(self):
        # Same total surplus, but placed at the hub: every edge carries O(1).
        n = 8
        topo = star(n)
        data = [float(n + 1)] + [1.0] * (n - 1)
        assert max_equilibrium_flow(topo, data, [1.0] * n) < n / 2 + 2

    def test_antisymmetry_binary_tree(self):
        topo = binary_tree(15)
        rng = np.random.default_rng(0)
        data = list(rng.uniform(size=15))
        flows = equilibrium_flows(topo, data, [1.0] * 15)
        for (u, v) in topo.edges:
            assert flows[(u, v)] == pytest.approx(-flows[(v, u)])

    def test_flow_balance_at_each_node(self):
        # Net outflow at node i equals its surplus x_i - r*w_i.
        topo = binary_tree(10)
        rng = np.random.default_rng(1)
        data = list(rng.uniform(size=10))
        weights = [1.0] * 10
        flows = equilibrium_flows(topo, data, weights)
        aggregate = sum(data) / 10
        for i in topo.nodes():
            outflow = sum(flows[(i, j)] for j in topo.neighbors(i))
            assert outflow == pytest.approx(data[i] - aggregate * weights[i])

    def test_rejects_non_tree(self):
        with pytest.raises(TopologyError):
            equilibrium_flows(ring(5), [1.0] * 5, [1.0] * 5)

    def test_rejects_bad_lengths(self):
        with pytest.raises(TopologyError):
            equilibrium_flows(bus(3), [1.0], [1.0] * 3)
