"""Figure registry + renderers: every figure renders valid SVG from data."""

import pathlib
import xml.etree.ElementTree as ET

import pytest

from repro.analysis.campaigns.figures import (
    FIGURE_INFO,
    FIGURES,
    generate_figure,
)
from repro.analysis.campaigns.frame import Frame
from repro.analysis.campaigns.loader import COLUMNS, CampaignData, normalize_record
from repro.analysis.campaigns.render import (
    matplotlib_available,
    render_figure,
    render_svg,
)
from repro.exceptions import ExperimentError

ALGORITHMS = ("push_sum", "push_flow", "push_cancel_flow")
FAULTS = ("none", "churn0.05", "partition@40-heal@80")


def synthetic_campaign(tmp_dir=pathlib.Path(".")) -> CampaignData:
    """A campaign rich enough that every registered figure renders."""
    records = []
    i = 0
    for algorithm in ALGORITHMS:
        for fault in FAULTS:
            for n in (8, 32):
                for seed in (0, 1):
                    dynamic = fault != "none"
                    batched = seed == 1  # kernel-time needs fused-kernel rows
                    records.append(
                        normalize_record(
                            {
                                "cell_id": f"{algorithm}|hc-{n}|{fault}|s{seed}",
                                "status": "ok",
                                "algorithm": algorithm,
                                "topology": f"hypercube-{n}",
                                "fault": fault,
                                "seed": seed,
                                "n": n,
                                "rounds": 160,
                                "epsilon": 1e-6,
                                "converged": (i % 3) != 0,
                                "rounds_to_tolerance": 60 + (i % 20),
                                "final_error": 10.0 ** (-(i % 10) - 2),
                                "event_round": 40 if dynamic else None,
                                "recovery_rounds": float(10 + i % 25)
                                if dynamic
                                else None,
                                "recovered": not dynamic or i % 4 != 0,
                                "jump_factor": 1.0 + (i % 7) * 3.0
                                if dynamic
                                else None,
                                "mass_drift_floor": 1e-15 * (i % 5),
                                "dynamics": {"transitions": 3}
                                if dynamic
                                else None,
                                "alerts": {},
                                "alerts_total": 0,
                                "flight_dumps": [],
                                "wall_s": 0.1 + (i % 9) / 50.0,
                                "kernel_seconds": 0.001 + (i % 6) / 500.0
                                if batched
                                else None,
                                "recorded_at": 1.7e9 + i * 0.3,
                                "engine": "batched" if batched else "object",
                                "backend": "numpy" if batched else None,
                            }
                        )
                    )
                    i += 1
    return CampaignData(
        directory=pathlib.Path(tmp_dir),
        frame=Frame.from_records(records, columns=COLUMNS),
        spec={"name": "synthetic"},
        expected_cells=len(records) + 4,  # a few cells still in flight
        duplicates=0,
        skipped_lines=0,
    )


@pytest.fixture(scope="module")
def campaign():
    return synthetic_campaign()


class TestRegistry:
    def test_every_figure_has_info(self):
        assert set(FIGURES) == set(FIGURE_INFO)
        for name, (paper, columns) in FIGURE_INFO.items():
            assert paper and columns, name

    def test_expected_names_registered(self):
        for name in (
            "accuracy-vs-scale",
            "convergence-rounds",
            "recovery-rounds",
            "fallback-jump",
            "churn-grid",
            "partition-heal-reconvergence",
            "mass-drift-floor",
        ):
            assert name in FIGURES

    def test_unknown_name_raises(self, campaign):
        with pytest.raises(ExperimentError):
            generate_figure("no-such-figure", campaign)


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(FIGURES))
    def test_generates_spec_with_content(self, campaign, name):
        spec = FIGURES[name](campaign)
        assert spec.name == name
        assert spec.kind in ("line", "bar", "heatmap")
        if spec.kind == "heatmap":
            assert spec.values and spec.row_labels and spec.col_labels
        else:
            assert spec.series

    def test_empty_campaign_raises(self):
        empty = CampaignData(
            directory=pathlib.Path("."),
            frame=Frame.from_records([], columns=COLUMNS),
            spec=None,
            expected_cells=None,
            duplicates=0,
            skipped_lines=0,
        )
        for name, generator in FIGURES.items():
            with pytest.raises(ExperimentError):
                generator(empty)

    def test_static_campaign_rejects_dynamics_figure(self, campaign):
        static = CampaignData(
            directory=campaign.directory,
            frame=campaign.frame.where(fault="none"),
            spec=campaign.spec,
            expected_cells=None,
            duplicates=0,
            skipped_lines=0,
        )
        with pytest.raises(ExperimentError):
            FIGURES["partition-heal-reconvergence"](static)


class TestBuiltinSvgRenderer:
    @pytest.mark.parametrize("name", sorted(FIGURES))
    def test_renders_valid_xml(self, campaign, name):
        svg = render_svg(FIGURES[name](campaign))
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert "<text" in svg  # titles/labels/ticks made it in

    @pytest.mark.parametrize("name", sorted(FIGURES))
    def test_render_figure_writes_file(self, campaign, name, tmp_path):
        path = render_figure(FIGURES[name](campaign), tmp_path, fmt="svg")
        assert path.exists() and path.suffix == ".svg"
        ET.fromstring(path.read_text())

    def test_png_without_matplotlib_raises(self, campaign, tmp_path):
        spec = FIGURES["churn-grid"](campaign)
        if matplotlib_available():
            path = render_figure(spec, tmp_path, fmt="png")
            assert path.suffix == ".png" and path.stat().st_size > 0
        else:
            with pytest.raises(ExperimentError):
                render_figure(spec, tmp_path, fmt="png")
