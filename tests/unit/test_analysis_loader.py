"""Loader tolerance: mixed-era records, duplicate cells, non-finite values."""

import json
import math

import pytest

from repro.analysis.campaigns.loader import (
    ERA_DYNAMICS,
    ERA_PRE_DYNAMICS,
    ERA_PRE_TRACING,
    ERA_TIMESTAMPED,
    SCHEMA_VERSION,
    load_campaign,
    load_records,
    normalize_record,
    record_era,
)
from repro.exceptions import ExperimentError

# One record per schema era, as the runner actually wrote them over time.
LEGACY_PRE_TRACING = {
    "cell_id": "push_sum|hypercube-8|none|s0",
    "status": "ok",
    "algorithm": "push_sum",
    "topology": "hypercube-8",
    "fault": "none",
    "seed": 0,
    "n": 8,
    "converged": True,
    "final_error": 1e-9,
}
LEGACY_PRE_DYNAMICS = {
    **LEGACY_PRE_TRACING,
    "cell_id": "push_sum|hypercube-8|none|s1",
    "seed": 1,
    "alerts": {"restart_regression": 2},
    "alerts_total": 2,
    "flight_dumps": ["flight/a.json", "flight/b.json"],
}
LEGACY_DYNAMICS = {
    **LEGACY_PRE_TRACING,
    "cell_id": "push_sum|hypercube-8|churn|s0",
    "fault": "churn",
    "alerts": {},
    "alerts_total": 0,
    "flight_dumps": [],
    "dynamics": {"transitions": 4, "final_nodes": 7},
}
CURRENT = {
    **LEGACY_DYNAMICS,
    "cell_id": "push_sum|hypercube-8|churn|s1",
    "seed": 1,
    "recorded_at": 1.7e9,
}


class TestRecordEra:
    def test_each_era_detected(self):
        assert record_era(LEGACY_PRE_TRACING) == ERA_PRE_TRACING
        assert record_era(LEGACY_PRE_DYNAMICS) == ERA_PRE_DYNAMICS
        assert record_era(LEGACY_DYNAMICS) == ERA_DYNAMICS
        assert record_era(CURRENT) == ERA_TIMESTAMPED


class TestNormalize:
    def test_legacy_record_gets_typed_defaults(self):
        out = normalize_record(dict(LEGACY_PRE_TRACING))
        assert out["alerts_total"] == 0
        assert out["alerts"] == {}
        assert out["flight_dumps"] == []
        assert out["n_flight_dumps"] == 0
        assert out["dynamics"] is None
        assert out["recorded_at"] is None
        assert out["engine"] == "object"
        assert out["schema_era"] == ERA_PRE_TRACING

    def test_tagged_non_finite_floats_parse(self):
        raw = {
            **LEGACY_PRE_TRACING,
            "final_error": "inf",
            "mass_drift_floor": "nan",
            "recovery_rounds": "-inf",
        }
        out = normalize_record(raw)
        assert out["final_error"] == math.inf
        assert math.isnan(out["mass_drift_floor"])
        assert out["recovery_rounds"] == -math.inf

    def test_flight_dump_accounting(self):
        out = normalize_record(dict(LEGACY_PRE_DYNAMICS))
        assert out["n_flight_dumps"] == 2
        assert out["alerts"] == {"restart_regression": 2}


class TestLoadRecords:
    def _write(self, tmp_path, lines):
        path = tmp_path / "results.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_mixed_eras_in_one_file(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                json.dumps(r)
                for r in (
                    LEGACY_PRE_TRACING,
                    LEGACY_PRE_DYNAMICS,
                    LEGACY_DYNAMICS,
                    CURRENT,
                )
            ],
        )
        records, duplicates, skipped = load_records(path)
        assert len(records) == 4
        assert duplicates == 0 and skipped == 0
        assert sorted(r["schema_era"] for r in records) == [1, 2, 3, 4]
        # Every record lands on the same column set regardless of era.
        keys = {tuple(sorted(r)) for r in records}
        assert len(keys) == 1

    def test_duplicate_cell_latest_wins(self, tmp_path):
        first = dict(CURRENT, final_error=0.5, converged=False)
        second = dict(CURRENT, final_error=1e-9, converged=True)
        path = self._write(tmp_path, [json.dumps(first), json.dumps(second)])
        records, duplicates, skipped = load_records(path)
        assert len(records) == 1
        assert duplicates == 1
        assert records[0]["final_error"] == 1e-9
        assert records[0]["converged"] is True

    def test_garbage_and_truncated_lines_skipped(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                json.dumps(CURRENT),
                '{"cell_id": "push_sum|hyp',  # crash-truncated line
                json.dumps({"no_cell_id": True}),
                "",
            ],
        )
        records, duplicates, skipped = load_records(path)
        assert len(records) == 1
        assert skipped == 2


class TestLoadCampaign:
    def test_missing_results_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_campaign(tmp_path)

    def test_spec_drives_expected_cells_and_name(self, tmp_path):
        (tmp_path / "results.jsonl").write_text(json.dumps(CURRENT) + "\n")
        (tmp_path / "campaign.json").write_text(
            json.dumps(
                {
                    "name": "demo",
                    "algorithms": ["push_sum", "push_flow"],
                    "topologies": [{"family": "hypercube", "n": 8}],
                    "faults": [{"kind": "none"}],
                    "seeds": [0, 1, 2],
                }
            )
        )
        data = load_campaign(tmp_path)
        assert data.name == "demo"
        assert data.expected_cells == 6
        assert data.schema_version == SCHEMA_VERSION
        assert len(data.ok) == 1 and len(data.failed) == 0

    def test_corrupt_spec_degrades_gracefully(self, tmp_path):
        (tmp_path / "results.jsonl").write_text(json.dumps(CURRENT) + "\n")
        (tmp_path / "campaign.json").write_text("{not json")
        data = load_campaign(tmp_path)
        assert data.spec is None
        assert data.expected_cells is None
        assert data.name == tmp_path.name
