"""Unit tests for the distributed linear algebra layer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, LinalgError
from repro.linalg import (
    ExactReductionService,
    ReductionService,
    RowDistributedMatrix,
    align_signs,
    distributed_power_iteration,
    dmgs,
    distributed_qr,
    factorization_error,
    local_mgs,
    partition_rows,
    r_consistency_error,
    reconstruct,
)
from repro.topology import hypercube, ring


class TestPartitionRows:
    def test_even(self):
        ranges = partition_rows(8, 4)
        assert [len(r) for r in ranges] == [2, 2, 2, 2]
        assert ranges[0] == range(0, 2)

    def test_uneven(self):
        ranges = partition_rows(10, 4)
        assert [len(r) for r in ranges] == [3, 3, 2, 2]
        assert sum(len(r) for r in ranges) == 10

    def test_one_row_per_node(self):
        assert [len(r) for r in partition_rows(4, 4)] == [1, 1, 1, 1]

    def test_too_few_rows(self):
        with pytest.raises(LinalgError):
            partition_rows(3, 4)


class TestRowDistributedMatrix:
    def test_from_matrix_roundtrip(self):
        m = np.arange(24.0).reshape(8, 3)
        dist = RowDistributedMatrix.from_matrix(m, 4)
        assert dist.nodes == 4
        assert dist.rows == 8
        assert dist.cols == 3
        np.testing.assert_array_equal(dist.gather(), m)

    def test_blocks_are_independent_copies(self):
        m = np.ones((4, 2))
        dist = RowDistributedMatrix.from_matrix(m, 2)
        dist.block(0)[:] = 7.0
        assert (dist.block(1) == 1.0).all()
        assert (m == 1.0).all()

    def test_row_owner(self):
        dist = RowDistributedMatrix.from_matrix(np.zeros((5, 2)), 2)
        np.testing.assert_array_equal(dist.row_owner(), [0, 0, 0, 1, 1])

    def test_copy_is_deep(self):
        dist = RowDistributedMatrix.from_matrix(np.ones((4, 2)), 2)
        clone = dist.copy()
        clone.block(0)[:] = 5.0
        assert (dist.block(0) == 1.0).all()

    def test_local_gram_partial(self):
        m = np.arange(8.0).reshape(4, 2)
        dist = RowDistributedMatrix.from_matrix(m, 2)
        partial = dist.local_gram_partial(0, 0, [1])
        expected = m[:2, 1] @ m[:2, 0]
        assert partial[0] == expected

    def test_rejects_bad_input(self):
        with pytest.raises(LinalgError):
            RowDistributedMatrix.from_matrix(np.zeros(4), 2)
        with pytest.raises(LinalgError):
            RowDistributedMatrix([])
        with pytest.raises(LinalgError):
            RowDistributedMatrix([np.zeros((2, 2)), np.zeros((2, 3))])


class TestReferenceMGS:
    def test_matches_numpy_qr(self):
        rng = np.random.default_rng(0)
        v = rng.standard_normal((12, 5))
        q, r = local_mgs(v)
        np.testing.assert_allclose(q @ r, v, atol=1e-12)
        np.testing.assert_allclose(q.T @ q, np.eye(5), atol=1e-12)
        q_np, r_np = np.linalg.qr(v)
        q_a, r_a = align_signs(q, r)
        q_b, r_b = align_signs(q_np, r_np)
        np.testing.assert_allclose(q_a, q_b, atol=1e-10)
        np.testing.assert_allclose(r_a, r_b, atol=1e-10)

    def test_rejects_wide(self):
        with pytest.raises(LinalgError):
            local_mgs(np.zeros((2, 5)))

    def test_rank_deficient(self):
        v = np.ones((4, 2))
        with pytest.raises(LinalgError):
            local_mgs(v)


class TestExactService:
    def test_all_reduce_scalar(self):
        topo = ring(4)
        service = ExactReductionService(topo)
        result = service.all_reduce_sum([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(result, [10.0] * 4)

    def test_all_reduce_vector(self):
        topo = ring(3)
        service = ExactReductionService(topo)
        result = service.all_reduce_sum([np.array([1.0, 0.0])] * 3)
        assert result.shape == (3, 2)
        np.testing.assert_array_equal(result[:, 0], 3.0)

    def test_wrong_count(self):
        service = ExactReductionService(ring(3))
        with pytest.raises(ConfigurationError):
            service.all_reduce_sum([1.0, 2.0])


class TestGossipService:
    def test_sum_reaches_truth(self):
        topo = hypercube(4)
        service = ReductionService(topo, algorithm="push_cancel_flow", seed=0)
        partials = list(np.random.default_rng(1).uniform(size=topo.n))
        result = service.all_reduce_sum(partials)
        assert result.shape == (topo.n,)
        truth = float(np.sum(partials))
        assert np.max(np.abs(result - truth)) < 1e-12
        assert service.stats.calls == 1
        assert service.stats.total_rounds > 0

    def test_sum_aggregate_mode(self):
        topo = hypercube(3)
        service = ReductionService(
            topo, algorithm="push_cancel_flow", seed=0, aggregate="sum"
        )
        partials = [float(i) for i in range(topo.n)]
        result = service.all_reduce_sum(partials)
        assert np.max(np.abs(result - 28.0)) < 1e-10

    def test_inconsistent_dims_rejected(self):
        service = ReductionService(hypercube(2), seed=0)
        with pytest.raises(ConfigurationError):
            service.all_reduce_sum([np.zeros(2), np.zeros(3), 0.0, 0.0])

    def test_bad_aggregate_mode(self):
        with pytest.raises(ConfigurationError):
            ReductionService(ring(4), aggregate="median")

    def test_same_seed_same_schedules(self):
        topo = hypercube(3)
        partials = list(np.random.default_rng(2).uniform(size=topo.n))
        a = ReductionService(topo, seed=9).all_reduce_sum(partials)
        b = ReductionService(topo, seed=9).all_reduce_sum(partials)
        np.testing.assert_array_equal(a, b)


class TestDMGS:
    def test_exact_service_matches_local_mgs(self):
        rng = np.random.default_rng(2)
        v = rng.standard_normal((8, 4))
        topo = hypercube(3)
        dist = RowDistributedMatrix.from_matrix(v, topo.n)
        result = dmgs(dist, ExactReductionService(topo))
        q_ref, r_ref = local_mgs(v)
        np.testing.assert_allclose(result.q.gather(), q_ref, atol=1e-12)
        for p in range(topo.n):
            np.testing.assert_allclose(result.r_blocks[p], r_ref, atol=1e-12)

    def test_fused_mode_matches_two_phase_exactly_for_exact_service(self):
        rng = np.random.default_rng(3)
        v = rng.standard_normal((8, 4))
        topo = hypercube(3)
        dist = RowDistributedMatrix.from_matrix(v, topo.n)
        two = dmgs(dist, ExactReductionService(topo), mode="two_phase")
        fused = dmgs(dist, ExactReductionService(topo), mode="fused")
        np.testing.assert_allclose(
            two.q.gather(), fused.q.gather(), atol=1e-12
        )

    def test_input_not_modified(self):
        v = np.random.default_rng(4).standard_normal((4, 2))
        topo = ring(4)
        dist = RowDistributedMatrix.from_matrix(v, topo.n)
        dmgs(dist, ExactReductionService(topo))
        np.testing.assert_array_equal(dist.gather(), v)

    def test_bad_mode(self):
        topo = ring(4)
        dist = RowDistributedMatrix.from_matrix(np.eye(4), topo.n)
        with pytest.raises(LinalgError):
            dmgs(dist, ExactReductionService(topo), mode="three_phase")

    def test_node_count_mismatch(self):
        dist = RowDistributedMatrix.from_matrix(np.eye(4), 4)
        with pytest.raises(LinalgError):
            dmgs(dist, ExactReductionService(ring(5)))

    def test_wide_matrix_rejected(self):
        topo = ring(3)
        dist = RowDistributedMatrix.from_matrix(np.zeros((3, 5)), 3)
        with pytest.raises(LinalgError):
            dmgs(dist, ExactReductionService(topo))

    def test_rank_deficient_detected(self):
        topo = ring(4)
        dist = RowDistributedMatrix.from_matrix(np.ones((4, 2)), 4)
        with pytest.raises(LinalgError):
            dmgs(dist, ExactReductionService(topo))


class TestErrorMetrics:
    def test_factorization_error_zero_for_exact(self):
        rng = np.random.default_rng(5)
        v = rng.standard_normal((8, 3))
        topo = hypercube(3)
        result = distributed_qr(v, topo, algorithm="exact")
        assert result.factorization_error < 1e-14
        assert result.orthogonality_error < 1e-13
        assert result.r_consistency == 0.0

    def test_reconstruct_reference_vs_owner(self):
        rng = np.random.default_rng(6)
        v = rng.standard_normal((8, 3))
        topo = hypercube(3)
        result = distributed_qr(v, topo, algorithm="push_cancel_flow", seed=1)
        ref = reconstruct(result.q, result.r_blocks, reference_node=0)
        own = reconstruct(result.q, result.r_blocks, reference_node=None)
        # Owner-local reconstruction is consistent by construction and
        # therefore at least as accurate.
        err_ref = np.abs(v - ref).max()
        err_own = np.abs(v - own).max()
        assert err_own <= err_ref + 1e-15

    def test_shape_checks(self):
        topo = ring(4)
        dist = RowDistributedMatrix.from_matrix(np.eye(4), 4)
        with pytest.raises(LinalgError):
            factorization_error(np.eye(5), dist, [np.eye(4)] * 4)
        with pytest.raises(LinalgError):
            reconstruct(dist, [np.eye(4)] * 3)
        with pytest.raises(LinalgError):
            r_consistency_error([])


class TestPowerIteration:
    def test_dominant_eigenpair(self):
        rng = np.random.default_rng(7)
        basis, _ = np.linalg.qr(rng.standard_normal((8, 8)))
        eigenvalues = np.array([5.0, 2.0, 1.0, 0.5, 0.3, 0.2, 0.1, 0.05])
        a = basis @ np.diag(eigenvalues) @ basis.T
        topo = hypercube(3)
        service = ReductionService(topo, algorithm="push_cancel_flow", seed=0)
        result = distributed_power_iteration(a, service, iterations=60, seed=1)
        assert result.eigenvalue == pytest.approx(5.0, rel=1e-6)
        assert result.residual < 1e-4
        assert result.eigenvalue_spread < 1e-6

    def test_rejects_nonsymmetric(self):
        topo = ring(4)
        service = ExactReductionService(topo)
        with pytest.raises(LinalgError):
            distributed_power_iteration(
                np.triu(np.ones((4, 4))), service
            )

    def test_rejects_nonsquare(self):
        with pytest.raises(LinalgError):
            distributed_power_iteration(
                np.zeros((3, 4)), ExactReductionService(ring(3))
            )


class TestServiceContractFixes:
    """Regression tests for the shared validation/normalization contract."""

    def test_scalar_and_length1_vector_mix_is_scalar_call(self):
        # The result shape must not flip on how one caller spelled 0.0.
        topo = ring(4)
        mixed_a = [0.5, np.array([1.0]), 2.0, -0.5]
        mixed_b = [np.array([0.5]), 1.0, np.array([2.0]), np.array([-0.5])]
        for mixed in (mixed_a, mixed_b):
            out = ReductionService(topo, seed=1).all_reduce_sum(mixed)
            assert out.shape == (4,), out.shape

    def test_all_length1_vectors_stay_a_vector_call(self):
        topo = ring(4)
        out = ReductionService(topo, seed=1).all_reduce_sum(
            [np.array([float(i)]) for i in range(4)]
        )
        assert out.shape == (4, 1), out.shape

    def test_mix_shape_consistent_across_services(self):
        topo = ring(4)
        mixed = [0.5, np.array([1.0]), 2.0, -0.5]
        exact = ExactReductionService(topo).all_reduce_sum(mixed)
        gossip = ReductionService(topo, seed=1).all_reduce_sum(mixed)
        assert exact.shape == gossip.shape == (4,)

    def test_exact_service_rejects_inconsistent_dims(self):
        # Shared helper: a ConfigurationError, not a raw np.stack ValueError.
        service = ExactReductionService(ring(4))
        with pytest.raises(ConfigurationError):
            service.all_reduce_sum(
                [np.zeros(2), np.zeros(3), np.zeros(2), np.zeros(2)]
            )

    def test_exact_service_rejects_wrong_count(self):
        with pytest.raises(ConfigurationError):
            ExactReductionService(ring(4)).all_reduce_sum([1.0, 2.0])

    def test_matrix_partial_rejected(self):
        with pytest.raises(ConfigurationError):
            ReductionService(ring(4), seed=0).all_reduce_sum(
                [np.zeros((2, 2)), 0.0, 0.0, 0.0]
            )

    def test_failed_call_does_not_advance_seed_stream(self, monkeypatch):
        # A call that raises must consume no schedule seed: a caller that
        # catches and retries stays schedule-aligned with a peer service
        # sharing the master seed (the dmGS(PF)/dmGS(PCF) pairing).
        import repro.linalg.reduction_service as svc_mod
        from repro.exceptions import SimulationError

        topo = hypercube(3)
        partials = list(np.random.default_rng(11).uniform(size=topo.n))
        reference = ReductionService(topo, seed=5)
        ref_first = reference.all_reduce_sum(partials)
        ref_second = reference.all_reduce_sum(partials)

        real_run = svc_mod.run_reduction
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise SimulationError("injected mid-sequence failure")
            return real_run(*args, **kwargs)

        monkeypatch.setattr(svc_mod, "run_reduction", flaky)
        flaky_service = ReductionService(topo, seed=5)
        first = flaky_service.all_reduce_sum(partials)
        with pytest.raises(SimulationError):
            flaky_service.all_reduce_sum(partials)
        assert flaky_service.stats.failed_calls == 1
        assert flaky_service.stats.calls == 1
        second = flaky_service.all_reduce_sum(partials)  # the retry

        np.testing.assert_array_equal(first, ref_first)
        np.testing.assert_array_equal(second, ref_second)
