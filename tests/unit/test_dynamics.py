"""Unit tests for repro.dynamics: deltas, schedules, builders, traces."""

import pytest

from repro.dynamics import (
    TopologyDelta,
    TopologySchedule,
    TraceRecorder,
    load_trace,
    partition_and_heal,
    poisson_churn,
    random_edge_flaps,
    regional_outage,
    replay_from_trace,
    scripted_churn,
)
from repro.exceptions import ConfigurationError
from repro.topology import hypercube, ring


class TestTopologyDelta:
    def test_edge_is_canonicalized(self):
        delta = TopologyDelta(round=5, kind="edge_down", edge=(3, 1))
        assert delta.edge == (1, 3)

    def test_self_edge_rejected(self):
        with pytest.raises(ConfigurationError, match="self-edge"):
            TopologyDelta(round=0, kind="edge_down", edge=(2, 2))

    def test_negative_round_rejected(self):
        with pytest.raises(ConfigurationError, match="round"):
            TopologyDelta(round=-1, kind="node_leave", node=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown topology delta"):
            TopologyDelta(round=0, kind="node_explode", node=0)

    def test_node_kind_rejects_edge_and_vice_versa(self):
        with pytest.raises(ConfigurationError, match="needs a node"):
            TopologyDelta(round=0, kind="node_join", edge=(0, 1))
        with pytest.raises(ConfigurationError, match="needs an"):
            TopologyDelta(round=0, kind="edge_up", node=3)

    def test_event_round_trip(self):
        delta = TopologyDelta(
            round=7, kind="edge_up", edge=(0, 4), label="heal"
        )
        assert TopologyDelta.from_event(delta.to_event()) == delta


class TestTopologySchedule:
    def test_sorted_and_queryable_by_round(self):
        schedule = TopologySchedule(
            [
                TopologyDelta(round=9, kind="node_leave", node=1),
                TopologyDelta(round=2, kind="edge_down", edge=(0, 1)),
                TopologyDelta(round=9, kind="node_join", node=2),
            ]
        )
        assert [d.round for d in schedule.deltas] == [2, 9, 9]
        assert len(schedule.deltas_at(9)) == 2
        assert schedule.deltas_at(3) == ()
        assert schedule.last_round == 9
        assert not schedule.is_empty()

    def test_same_round_keeps_insertion_order(self):
        # Leave-before-join toggles within one round must stay ordered.
        schedule = TopologySchedule(
            [
                TopologyDelta(round=4, kind="node_leave", node=5),
                TopologyDelta(round=4, kind="node_join", node=5),
            ]
        )
        kinds = [d.kind for d in schedule.deltas_at(4)]
        assert kinds == ["node_leave", "node_join"]

    def test_validate_against_rejects_foreign_edges_and_nodes(self):
        topo = ring(6)
        TopologySchedule(
            [TopologyDelta(round=0, kind="edge_down", edge=(0, 1))]
        ).validate_against(topo)
        with pytest.raises(ConfigurationError, match="not an edge"):
            TopologySchedule(
                [TopologyDelta(round=0, kind="edge_down", edge=(0, 3))]
            ).validate_against(topo)
        with pytest.raises(ConfigurationError, match="outside topology"):
            TopologySchedule(
                [TopologyDelta(round=0, kind="node_leave", node=6)]
            ).validate_against(topo)

    def test_meta_summarizes_kinds_and_labels(self):
        schedule = scripted_churn([(10, "leave", 2), (20, "join", 2)])
        meta = schedule.meta()
        assert meta["deltas"] == 2
        assert meta["kinds"] == {"node_leave": 1, "node_join": 1}
        assert meta["labels"] == {"churn": 2}
        assert (meta["first_round"], meta["last_round"]) == (10, 20)

    def test_events_round_trip(self):
        schedule = partition_and_heal(ring(8), round=10, heal_round=30)
        rebuilt = TopologySchedule.from_events(schedule.to_events())
        assert rebuilt.deltas == schedule.deltas


class TestBuilders:
    def test_scripted_churn_validates_actions(self):
        with pytest.raises(ConfigurationError, match="leave"):
            scripted_churn([(5, "vanish", 1)])

    def test_poisson_churn_is_deterministic_per_seed(self):
        topo = hypercube(4)
        a = poisson_churn(topo, rate=0.2, start=5, end=60, seed=9)
        b = poisson_churn(topo, rate=0.2, start=5, end=60, seed=9)
        c = poisson_churn(topo, rate=0.2, start=5, end=60, seed=10)
        assert a.deltas == b.deltas
        assert a.deltas != c.deltas

    def test_poisson_churn_heals_and_respects_live_floor(self):
        topo = hypercube(4)
        schedule = poisson_churn(
            topo, rate=1.0, end=80, seed=3, min_live_fraction=0.75
        )
        departed = set()
        for delta in schedule.deltas:
            if delta.kind == "node_leave":
                departed.add(delta.node)
                assert topo.n - len(departed) >= int(0.75 * topo.n)
            else:
                departed.discard(delta.node)
        # The end-of-window heal restores the full population.
        assert not departed

    def test_partition_cut_disconnects_and_heal_restores(self):
        topo = hypercube(4)
        schedule = partition_and_heal(topo, round=10, heal_round=40, seed=2)
        downs = [d for d in schedule.deltas if d.kind == "edge_down"]
        ups = [d for d in schedule.deltas if d.kind == "edge_up"]
        assert {d.edge for d in downs} == {d.edge for d in ups}
        assert all(d.round == 10 for d in downs)
        assert all(d.round == 40 for d in ups)
        # The cut separates the node set into two non-empty sides with no
        # surviving cross edges.
        cut = {d.edge for d in downs}
        adjacency = {i: set() for i in topo.nodes()}
        for u, v in topo.edges:
            if (min(u, v), max(u, v)) not in cut:
                adjacency[u].add(v)
                adjacency[v].add(u)
        seen = {0}
        stack = [0]
        while stack:
            for nbr in adjacency[stack.pop()]:
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        assert 0 < len(seen) < topo.n

    def test_regional_outage_takes_down_a_contiguous_block(self):
        topo = hypercube(4)
        schedule = regional_outage(
            topo, round=30, duration=20, region_count=4, region=1
        )
        leaves = sorted(
            d.node for d in schedule.deltas if d.kind == "node_leave"
        )
        joins = sorted(
            d.node for d in schedule.deltas if d.kind == "node_join"
        )
        assert leaves == [4, 5, 6, 7]
        assert joins == leaves
        assert all(
            d.round == 30
            for d in schedule.deltas
            if d.kind == "node_leave"
        )
        assert all(
            d.round == 50 for d in schedule.deltas if d.kind == "node_join"
        )

    def test_edge_flaps_pair_down_with_up(self):
        topo = hypercube(4)
        schedule = random_edge_flaps(
            topo, rate=0.3, start=0, end=40, duration=5, seed=7
        )
        downs = {}
        for delta in schedule.deltas:
            if delta.kind == "edge_down":
                downs.setdefault(delta.edge, []).append(delta.round)
        for delta in schedule.deltas:
            if delta.kind == "edge_up":
                assert any(
                    delta.round - r == 5 for r in downs.get(delta.edge, [])
                )


class TestTraceRoundTrip:
    def _schedule(self):
        return TopologySchedule(
            [
                TopologyDelta(
                    round=3, kind="edge_down", edge=(0, 1), label="partition"
                ),
                TopologyDelta(
                    round=8, kind="edge_up", edge=(0, 1), label="heal"
                ),
                TopologyDelta(
                    round=5, kind="node_leave", node=4, label="churn"
                ),
            ]
        )

    def _recorder_with_events(self):
        recorder = TraceRecorder()
        for delta in self._schedule().deltas:
            detail = {"label": delta.label}
            if delta.edge is not None:
                detail["edge"] = list(delta.edge)
            if delta.node is not None:
                detail["node"] = delta.node
            recorder.on_topology_event(None, delta.round, delta.kind, detail)
        return recorder

    @pytest.mark.parametrize("suffix", [".jsonl", ".csv"])
    def test_topology_events_round_trip(self, tmp_path, suffix):
        recorder = self._recorder_with_events()
        path = recorder.save(tmp_path / f"trace{suffix}")
        replay = replay_from_trace(load_trace(path))
        assert replay.topology_schedule.deltas == self._schedule().deltas

    @pytest.mark.parametrize("suffix", [".jsonl", ".csv"])
    def test_drops_round_trip(self, tmp_path, suffix):
        from repro.simulation.messages import Message

        recorder = TraceRecorder()
        for rnd, (u, v) in [(2, (0, 3)), (2, (1, 2)), (9, (5, 4))]:
            recorder.on_message_dropped(
                None,
                Message(sender=u, receiver=v, round=rnd, payload=None),
                "injector",
            )
        # Non-injector drops are consequences of recorded events and must
        # not be re-applied on replay.
        recorder.on_message_dropped(
            None,
            Message(sender=7, receiver=6, round=4, payload=None),
            "dead_edge",
        )
        path = recorder.save(tmp_path / f"trace{suffix}")
        replay = replay_from_trace(load_trace(path))
        assert replay.message_fault.drops == {(2, 0, 3), (2, 1, 2), (9, 5, 4)}

    def test_missing_trace_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            load_trace(tmp_path / "nope.jsonl")
