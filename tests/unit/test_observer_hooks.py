"""Tests for observer fan-out, the extended hook set, and the counters.

The exact-sequence test pins down the engine's observer contract: hook
order within a round is part of the public interface the telemetry layer
builds on (fault activation before sends, per-message hooks inside their
phase, link handling before the handle-phase end, round end last).
"""

import warnings

import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.algorithms.registry import instantiate
from repro.faults.base import MessageFault
from repro.faults.events import FaultPlan, LinkFailure
from repro.simulation.engine import SynchronousEngine
from repro.simulation.observers import (
    DROP_REASONS,
    FAULT_KINDS,
    MessageCounter,
    Observer,
    ObserverList,
    RoundCounter,
)
from repro.simulation.schedule import FixedSchedule
from repro.topology import ring
from tests.conftest import build_engine


class SequenceRecorder(Observer):
    """Records every hook invocation as a comparable tuple."""

    def __init__(self, events, tag=None):
        self.events = events
        self.tag = tag

    def _mark(self, event):
        self.events.append((self.tag, event) if self.tag else event)

    def on_run_start(self, engine):
        self._mark("run_start")

    def on_round_end(self, engine, round_index):
        self._mark(("round_end", round_index))

    def on_link_handled(self, engine, round_index, u, v):
        self._mark(("link_handled", round_index, u, v))

    def on_run_end(self, engine, rounds_executed):
        self._mark(("run_end", rounds_executed))

    def on_message_sent(self, engine, message):
        self._mark(("sent", message.sender, message.receiver))

    def on_message_dropped(self, engine, message, reason):
        assert reason in DROP_REASONS
        self._mark(("dropped", message.sender, message.receiver, reason))

    def on_fault_injected(self, engine, round_index, kind, detail):
        assert kind in FAULT_KINDS
        self._mark(("fault", round_index, kind, detail))

    def on_phase_end(self, engine, phase, seconds):
        assert seconds >= 0.0
        self._mark(("phase", phase))

    def on_round_messages(self, engine, round_index, sent, delivered):
        self._mark(("round_messages", round_index, sent, delivered))


class DropFirstMessage(MessageFault):
    """Deterministically drops exactly the first message it sees."""

    def __init__(self):
        self._seen = 0

    def apply(self, message):
        self._seen += 1
        return None if self._seen == 1 else message


class TestObserverList:
    def test_bool_and_len(self):
        assert not ObserverList([])
        assert len(ObserverList([])) == 0
        lst = ObserverList([Observer(), Observer()])
        assert lst
        assert len(lst) == 2

    def test_fan_out_preserves_registration_order(self):
        events = []
        lst = ObserverList(
            [SequenceRecorder(events, tag="a"), SequenceRecorder(events, tag="b")]
        )
        lst.on_run_start(None)
        lst.on_round_end(None, 3)
        lst.on_phase_end(None, "send", 0.0)
        assert events == [
            ("a", "run_start"),
            ("b", "run_start"),
            ("a", ("round_end", 3)),
            ("b", ("round_end", 3)),
            ("a", ("phase", "send")),
            ("b", ("phase", "send")),
        ]

    def test_duck_typed_observer_without_new_hooks(self):
        # Legacy duck-typed observers (e.g. StateBitFlipInjector) implement
        # only the original four hooks; the new ones must be skipped.
        calls = []

        class Legacy:
            def on_run_start(self, engine):
                calls.append("start")

            def on_round_end(self, engine, round_index):
                calls.append("round")

            def on_link_handled(self, engine, round_index, u, v):
                calls.append("link")

            def on_run_end(self, engine, rounds_executed):
                calls.append("end")

        lst = ObserverList([Legacy()])
        lst.on_run_start(None)
        lst.on_message_sent(None, None)
        lst.on_message_dropped(None, None, "injector")
        lst.on_fault_injected(None, 0, "link_failure", "link(0,1)")
        lst.on_phase_end(None, "send", 0.0)
        lst.on_round_messages(None, 0, 4, 3)
        lst.on_run_end(None, 1)
        assert calls == ["start", "end"]


class TestHookSequence:
    def test_exact_sequence_three_nodes_one_loss_one_handling(self):
        # ring(3): node 0 sends to 1 in both rounds; round 0's message is
        # dropped by the injector, round 1's is delivered. Link (1,2) dies
        # physically at round 0 and is handled at round 1.
        topo = ring(3)
        initial = initial_mass_pairs(AggregateKind.AVERAGE, [3.0, 0.0, 0.0])
        algs = instantiate("push_flow", topo, initial)
        events = []
        engine = SynchronousEngine(
            topo,
            algs,
            FixedSchedule([[1, None, None], [1, None, None]]),
            message_fault=DropFirstMessage(),
            fault_plan=FaultPlan(
                link_failures=[LinkFailure(round=0, u=1, v=2, detection_delay=1)]
            ),
            observers=[SequenceRecorder(events)],
        )
        engine.run(2)
        assert events == [
            "run_start",
            # round 0
            ("fault", 0, "link_failure", "link(1,2)"),
            ("sent", 0, 1),
            ("phase", "send"),
            ("dropped", 0, 1, "injector"),
            ("phase", "transport"),
            ("phase", "deliver"),
            ("phase", "handle"),
            ("round_end", 0),
            # round 1
            ("sent", 0, 1),
            ("phase", "send"),
            ("phase", "transport"),
            ("phase", "deliver"),
            ("link_handled", 1, 1, 2),
            ("phase", "handle"),
            ("round_end", 1),
            ("run_end", 2),
        ]
        assert engine.messages_sent == 2
        assert engine.messages_delivered == 1

    def test_dead_edge_and_corruption_reasons(self):
        from repro.faults.bit_flip import BitFlipFault

        topo = ring(3)
        initial = initial_mass_pairs(AggregateKind.AVERAGE, [1.0] * 3)
        algs = instantiate("push_flow", topo, initial)
        events = []
        engine = SynchronousEngine(
            topo,
            algs,
            FixedSchedule([[1, None, None]]),
            message_fault=BitFlipFault(1.0, seed=5),
            fault_plan=FaultPlan(
                link_failures=[LinkFailure(round=0, u=0, v=1, detection_delay=9)]
            ),
            observers=[SequenceRecorder(events)],
        )
        engine.run(1)
        assert ("dropped", 0, 1, "dead_edge") in events
        # Swallowed on the dead edge before the injector could corrupt it.
        assert not any(e[0] == "fault" and e[2] == "message_corruption" for e in events if isinstance(e, tuple))

    def test_corruption_fires_fault_hook(self):
        from repro.faults.bit_flip import BitFlipFault

        topo = ring(3)
        initial = initial_mass_pairs(AggregateKind.AVERAGE, [1.0] * 3)
        algs = instantiate("push_flow", topo, initial)
        events = []
        engine = SynchronousEngine(
            topo,
            algs,
            FixedSchedule([[1, None, None]]),
            message_fault=BitFlipFault(1.0, seed=5),
            observers=[SequenceRecorder(events)],
        )
        engine.run(1)
        assert ("fault", 0, "message_corruption", "edge(0,1)") in events
        assert engine.messages_delivered == 1


class TestRoundCounter:
    def test_counts_rounds_and_per_round_deltas(self):
        topo = ring(4)
        counter = RoundCounter()
        engine, _ = build_engine(topo, "push_sum", [1.0] * 4, observers=[counter])
        engine.run(7)
        assert counter.rounds == 7
        # Every live node sends every round on a fault-free ring.
        assert counter.sent_per_round == [4] * 7
        assert counter.delivered_per_round == [4] * 7

    def test_message_counter_alias_warns(self):
        with pytest.warns(DeprecationWarning, match="RoundCounter"):
            counter = MessageCounter()
        assert isinstance(counter, RoundCounter)

    def test_round_counter_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            RoundCounter()
