"""Unit tests for the reduction daemon (repro.service).

The load-bearing property is the same one the batched executor carries:
a job that rides through the daemon — batched with strangers, retried
after a worker death, resubmitted with fresh partials — must produce
estimates *bit-identical* to a serial :class:`ReductionService` call
with the same seed and call index. Admission control (quota, queue
backpressure), epoch semantics and lifecycle behavior layer on top.

Most tests run the daemon in-process (``workers=0``) and gate
``repro.service.batch.execute_group`` with a :class:`threading.Event`
to make queue occupancy deterministic; the dispatcher imports the
symbol from the module on every group, so a monkeypatched attribute
takes effect immediately.
"""

import glob
import os
import threading
import time

import numpy as np
import pytest

import repro.service.batch as batch_mod
from repro.exceptions import (
    ConfigurationError,
    JobFailedError,
    QueueFullError,
    QuotaExceededError,
    ServiceError,
)
from repro.linalg import ReductionService, RowDistributedMatrix, dmgs
from repro.service.client import DaemonClient
from repro.service.daemon import ReductionDaemon
from repro.topology import hypercube, ring


def _bits(a):
    return np.ascontiguousarray(np.asarray(a, dtype=np.float64)).view(
        np.uint64
    )


def _bit_identical(a, b):
    a, b = np.asarray(a), np.asarray(b)
    return a.shape == b.shape and np.array_equal(_bits(a), _bits(b))


def _serial(topology, partials, **kwargs):
    return ReductionService(topology, **kwargs).all_reduce_sum(partials)


class _Gate:
    """Monkeypatched execute_group that blocks until released."""

    def __init__(self, monkeypatch):
        self.release = threading.Event()
        self.entered = threading.Event()
        real = batch_mod.execute_group

        def gated(requests, **kwargs):
            self.entered.set()
            if not self.release.wait(timeout=30):
                raise RuntimeError("gate never released")
            return real(requests, **kwargs)

        monkeypatch.setattr(batch_mod, "execute_group", gated)


class TestParity:
    def test_concurrent_tenants_bit_identical_to_serial(self):
        # 4 threads x 4 jobs each, all multiplexed through one daemon;
        # every result must match a serial service with the same seed.
        topo = hypercube(3)
        rng = np.random.default_rng(3)
        results = {}
        errors = []

        def tenant_worker(daemon, tenant_index):
            try:
                ids = []
                for j in range(4):
                    partials = [
                        rows[tenant_index * 4 + j][i] for i in range(topo.n)
                    ]
                    ids.append(
                        (
                            daemon.submit(
                                tenant=f"t{tenant_index}",
                                algorithm="push_sum",
                                topology=topo,
                                partials=partials,
                                epsilon=1e-12,
                                seed=tenant_index,
                                call_index=j,
                            ),
                            tenant_index,
                            j,
                        )
                    )
                for job_id, t, j in ids:
                    res = daemon.result(job_id, timeout=30)
                    results[(t, j)] = res
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        rows = rng.uniform(size=(16, topo.n))
        with ReductionDaemon(workers=0, linger_s=0.02) as daemon:
            threads = [
                threading.Thread(target=tenant_worker, args=(daemon, t))
                for t in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert len(results) == 16
        for (t, j), res in results.items():
            serial = ReductionService(
                topo, algorithm="push_sum", epsilon=1e-12, seed=t
            )
            for k in range(j + 1):
                expected = serial.all_reduce_sum(
                    [rows[t * 4 + k][i] for i in range(topo.n)]
                )
            assert _bit_identical(res.estimates, expected), (t, j)

    def test_queued_jobs_batch_into_one_group(self, monkeypatch):
        # Block the dispatcher on a first group, pile up compatible jobs,
        # release: the backlog must execute as one batched group.
        gate = _Gate(monkeypatch)
        topo = ring(8)
        rng = np.random.default_rng(7)
        data = rng.uniform(size=(8, topo.n))
        with ReductionDaemon(workers=0, linger_s=0.0) as daemon:
            ids = [
                daemon.submit(
                    tenant=f"t{j % 3}",
                    algorithm="push_flow",
                    topology=topo,
                    partials=[data[j][i] for i in range(topo.n)],
                    epsilon=1e-12,
                    seed=j,
                )
                for j in range(8)
            ]
            assert gate.entered.wait(timeout=10)
            gate.release.set()
            batched = []
            for j, job_id in enumerate(ids):
                res = daemon.result(job_id, timeout=30)
                batched.append(res.batched_with)
                expected = _serial(
                    topo,
                    [data[j][i] for i in range(topo.n)],
                    algorithm="push_flow",
                    epsilon=1e-12,
                    seed=j,
                )
                assert _bit_identical(res.estimates, expected)
        # The gated first group is small; everything queued behind it
        # must have coalesced.
        assert max(batched) >= 2

    def test_object_path_algorithm_matches_serial(self):
        # push_flow_incremental has no vectorized engine: the daemon
        # must route it down the object path and still match serial.
        topo = ring(6)
        partials = [float(i) for i in range(topo.n)]
        with ReductionDaemon(workers=0) as daemon:
            job_id = daemon.submit(
                tenant="obj",
                algorithm="push_flow_incremental",
                topology=topo,
                partials=partials,
                epsilon=1e-10,
                seed=5,
            )
            res = daemon.result(job_id, timeout=30)
        expected = _serial(
            topo,
            partials,
            algorithm="push_flow_incremental",
            epsilon=1e-10,
            seed=5,
        )
        assert res.engine == "object"
        assert _bit_identical(res.estimates, expected)


class TestAdmissionControl:
    def test_tenant_quota_rejected(self, monkeypatch):
        gate = _Gate(monkeypatch)
        topo = ring(4)
        partials = [1.0, 2.0, 3.0, 4.0]
        daemon = ReductionDaemon(workers=0, tenant_quota=2, linger_s=0.0)
        try:
            ids = [
                daemon.submit(
                    tenant="greedy",
                    algorithm="push_sum",
                    topology=topo,
                    partials=partials,
                    epsilon=1e-9,
                    call_index=j,
                )
                for j in range(2)
            ]
            with pytest.raises(QuotaExceededError):
                daemon.submit(
                    tenant="greedy",
                    algorithm="push_sum",
                    topology=topo,
                    partials=partials,
                    epsilon=1e-9,
                    call_index=2,
                )
            # Another tenant is unaffected by the greedy one's quota.
            other = daemon.submit(
                tenant="polite",
                algorithm="push_sum",
                topology=topo,
                partials=partials,
                epsilon=1e-9,
            )
            gate.release.set()
            for job_id in ids + [other]:
                daemon.result(job_id, timeout=30)
            stats = daemon.stats()
            assert stats.rejected == 1
            assert stats.completed == 3
        finally:
            gate.release.set()
            daemon.close()

    def test_queue_full_backpressure(self, monkeypatch):
        gate = _Gate(monkeypatch)
        topo = ring(4)
        partials = [1.0, 1.0, 1.0, 1.0]
        daemon = ReductionDaemon(
            workers=0, max_pending=2, tenant_quota=64, linger_s=0.0
        )
        try:
            blocker = daemon.submit(
                tenant="a",
                algorithm="push_sum",
                topology=topo,
                partials=partials,
                epsilon=1e-9,
            )
            # Wait until the dispatcher has pulled the blocker out of the
            # queue and is stuck in the gate, then fill the queue.
            assert gate.entered.wait(timeout=10)
            queued = [
                daemon.submit(
                    tenant="a",
                    algorithm="push_sum",
                    topology=topo,
                    partials=partials,
                    epsilon=1e-9,
                    call_index=j + 1,
                )
                for j in range(2)
            ]
            with pytest.raises(QueueFullError):
                daemon.submit(
                    tenant="a",
                    algorithm="push_sum",
                    topology=topo,
                    partials=partials,
                    epsilon=1e-9,
                    call_index=3,
                )
            gate.release.set()
            for job_id in [blocker] + queued:
                daemon.result(job_id, timeout=30)
            assert daemon.stats().rejected == 1
        finally:
            gate.release.set()
            daemon.close()

    def test_invalid_job_rejected_synchronously(self):
        topo = ring(4)
        with ReductionDaemon(workers=0) as daemon:
            with pytest.raises(ConfigurationError):
                daemon.submit(
                    tenant="bad",
                    algorithm="push_sum",
                    topology=topo,
                    partials=[1.0, 2.0],  # wrong count
                    epsilon=1e-9,
                )
            with pytest.raises(ConfigurationError):
                daemon.submit(
                    tenant="bad",
                    algorithm="no_such_algorithm",
                    topology=topo,
                    partials=[1.0, 2.0, 3.0, 4.0],
                )
            assert daemon.stats().rejected == 2


class TestWorkerDeath:
    def test_worker_crash_is_retried_and_daemon_stays_healthy(self):
        topo = ring(4)
        partials = [2.0, 4.0, 6.0, 8.0]
        with ReductionDaemon(workers=1, retries=1, linger_s=0.0) as daemon:
            job_id = daemon.submit(
                tenant="crashy",
                algorithm="push_sum",
                topology=topo,
                partials=partials,
                epsilon=1e-9,
                seed=11,
                crash_attempts=1,  # first attempt dies via os._exit(42)
            )
            res = daemon.result(job_id, timeout=60)
            assert res.attempts == 2
            stats = daemon.stats()
            assert stats.retries >= 1
            assert stats.failed == 0
            # The daemon survived the death: a follow-up job completes.
            follow = daemon.submit(
                tenant="crashy",
                algorithm="push_sum",
                topology=topo,
                partials=partials,
                epsilon=1e-9,
                seed=11,
                call_index=1,
            )
            daemon.result(follow, timeout=60)
        expected = _serial(
            topo, partials, algorithm="push_sum", epsilon=1e-9, seed=11
        )
        assert _bit_identical(res.estimates, expected)
        # The crashed attempt's shared-memory segment must not leak.
        leaked = glob.glob(f"/dev/shm/repro-svc-{os.getpid()}-*")
        assert leaked == []

    def test_crash_past_retry_budget_fails_the_job(self):
        topo = ring(4)
        with ReductionDaemon(workers=1, retries=1, linger_s=0.0) as daemon:
            job_id = daemon.submit(
                tenant="doomed",
                algorithm="push_sum",
                topology=topo,
                partials=[1.0, 1.0, 1.0, 1.0],
                epsilon=1e-9,
                crash_attempts=5,  # outlives the retry budget
            )
            with pytest.raises(JobFailedError, match="crashed"):
                daemon.result(job_id, timeout=60)
            assert daemon.stats().failed == 1


class TestEpochResubmission:
    def test_queued_job_swaps_inputs_in_place(self, monkeypatch):
        gate = _Gate(monkeypatch)
        topo = ring(4)
        stale = [1.0, 2.0, 3.0, 4.0]
        fresh = [10.0, 20.0, 30.0, 40.0]
        daemon = ReductionDaemon(workers=0, linger_s=0.0)
        try:
            blocker = daemon.submit(
                tenant="a",
                algorithm="push_sum",
                topology=topo,
                partials=[0.5] * 4,
                epsilon=1e-9,
            )
            assert gate.entered.wait(timeout=10)
            job_id = daemon.submit(
                tenant="a",
                algorithm="push_sum",
                topology=topo,
                partials=stale,
                epsilon=1e-9,
                seed=3,
                call_index=1,
            )
            epoch = daemon.resubmit(job_id, fresh)
            assert epoch == 1
            gate.release.set()
            res = daemon.result(job_id, timeout=30)
            daemon.result(blocker, timeout=30)
        finally:
            gate.release.set()
            daemon.close()
        # The reduction ran on the fresh partials with the *same*
        # schedule seed (seed 3, call index 1).
        serial = ReductionService(
            topo, algorithm="push_sum", epsilon=1e-9, seed=3
        )
        serial.all_reduce_sum([0.0] * 4)  # burn call index 0
        expected = serial.all_reduce_sum(fresh)
        assert _bit_identical(res.estimates, expected)
        assert daemon.stats().epoch_resubmissions == 1

    def test_running_job_discards_stale_result_and_reruns(self, monkeypatch):
        gate = _Gate(monkeypatch)
        topo = ring(4)
        stale = [1.0, 2.0, 3.0, 4.0]
        fresh = [-4.0, -3.0, -2.0, -1.0]
        daemon = ReductionDaemon(workers=0, linger_s=0.0)
        try:
            job_id = daemon.submit(
                tenant="a",
                algorithm="push_sum",
                topology=topo,
                partials=stale,
                epsilon=1e-9,
                seed=8,
            )
            assert gate.entered.wait(timeout=10)  # attempt 1 is in flight
            epoch = daemon.resubmit(job_id, fresh)
            assert epoch == 1
            gate.release.set()
            res = daemon.result(job_id, timeout=30)
        finally:
            gate.release.set()
            daemon.close()
        expected = _serial(
            topo, fresh, algorithm="push_sum", epsilon=1e-9, seed=8
        )
        assert _bit_identical(res.estimates, expected)

    def test_done_job_readmits_and_converges_to_updated_sum(self):
        topo = ring(4)
        with ReductionDaemon(workers=0) as daemon:
            job_id = daemon.submit(
                tenant="a",
                algorithm="push_sum",
                topology=topo,
                partials=[1.0, 2.0, 3.0, 4.0],
                epsilon=1e-12,
                seed=2,
            )
            first = daemon.result(job_id, timeout=30)
            fresh = [8.0, 6.0, 4.0, 2.0]
            epoch = daemon.resubmit(job_id, fresh)
            assert epoch == 1
            second = daemon.result(job_id, timeout=30)
            expected = _serial(
                topo, fresh, algorithm="push_sum", epsilon=1e-12, seed=2
            )
            assert _bit_identical(second.estimates, expected)
            assert not _bit_identical(first.estimates, second.estimates)

    def test_resubmit_unknown_job_rejected(self):
        with ReductionDaemon(workers=0) as daemon:
            with pytest.raises(ServiceError):
                daemon.resubmit("nope", [1.0, 2.0])


class TestLifecycle:
    def test_close_without_drain_fails_queued_jobs(self, monkeypatch):
        gate = _Gate(monkeypatch)
        topo = ring(4)
        daemon = ReductionDaemon(workers=0, linger_s=0.0)
        blocker = daemon.submit(
            tenant="a",
            algorithm="push_sum",
            topology=topo,
            partials=[1.0] * 4,
            epsilon=1e-9,
        )
        assert gate.entered.wait(timeout=10)
        queued = daemon.submit(
            tenant="a",
            algorithm="push_sum",
            topology=topo,
            partials=[2.0] * 4,
            epsilon=1e-9,
            call_index=1,
        )
        gate.release.set()
        daemon.close(drain=False)
        daemon.result(blocker, timeout=5)  # in-flight work still lands
        with pytest.raises(JobFailedError, match="shutting down"):
            daemon.result(queued, timeout=5)
        with pytest.raises(ServiceError):
            daemon.submit(
                tenant="a",
                algorithm="push_sum",
                topology=topo,
                partials=[1.0] * 4,
                epsilon=1e-9,
            )

    def test_queue_deadline_expires_waiting_job(self, monkeypatch):
        gate = _Gate(monkeypatch)
        topo = ring(4)
        daemon = ReductionDaemon(workers=0, linger_s=0.0)
        try:
            blocker = daemon.submit(
                tenant="a",
                algorithm="push_sum",
                topology=topo,
                partials=[1.0] * 4,
                epsilon=1e-9,
            )
            assert gate.entered.wait(timeout=10)
            doomed = daemon.submit(
                tenant="a",
                algorithm="push_sum",
                topology=topo,
                partials=[2.0] * 4,
                epsilon=1e-9,
                call_index=1,
                deadline_s=0.05,
            )
            time.sleep(0.1)
            gate.release.set()
            daemon.result(blocker, timeout=30)
            with pytest.raises(JobFailedError, match="deadline"):
                daemon.result(doomed, timeout=30)
        finally:
            gate.release.set()
            daemon.close()

    def test_result_timeout_raises(self, monkeypatch):
        gate = _Gate(monkeypatch)
        topo = ring(4)
        daemon = ReductionDaemon(workers=0, linger_s=0.0)
        try:
            job_id = daemon.submit(
                tenant="a",
                algorithm="push_sum",
                topology=topo,
                partials=[1.0] * 4,
                epsilon=1e-9,
            )
            with pytest.raises(TimeoutError):
                daemon.result(job_id, timeout=0.05)
        finally:
            gate.release.set()
            daemon.close()


class TestDaemonClient:
    def test_dmgs_through_daemon_matches_in_process_service(self):
        # The acceptance bar: swapping the client in for the service must
        # not change a single bit of the factorization.
        topo = hypercube(3)
        rng = np.random.default_rng(17)
        v = RowDistributedMatrix(
            [rng.uniform(size=(3, 4)) for _ in range(topo.n)]
        )
        serial_service = ReductionService(
            topo, algorithm="push_cancel_flow", epsilon=1e-12, seed=21
        )
        reference = dmgs(v, serial_service)
        with ReductionDaemon(workers=0, linger_s=0.0) as daemon:
            client = DaemonClient(
                daemon,
                topo,
                tenant="qr",
                algorithm="push_cancel_flow",
                epsilon=1e-12,
                seed=21,
            )
            result = dmgs(v, client)
        for node in range(topo.n):
            assert _bit_identical(
                result.q.block(node), reference.q.block(node)
            )
            assert _bit_identical(
                result.r_blocks[node], reference.r_blocks[node]
            )
        assert client.stats.calls == serial_service.stats.calls
        assert client.stats.total_rounds == serial_service.stats.total_rounds

    def test_client_failure_accounting_preserves_seed_stream(self):
        topo = ring(4)
        with ReductionDaemon(workers=0, linger_s=0.0) as daemon:
            client = DaemonClient(
                daemon,
                topo,
                tenant="flaky",
                algorithm="push_sum",
                epsilon=1e-9,
                seed=4,
            )
            with pytest.raises(ConfigurationError):
                client.all_reduce_sum([1.0, 2.0])  # wrong partial count
            assert client.stats.failed_calls == 1
            assert client.stats.calls == 0
            got = client.all_reduce_sum([1.0, 2.0, 3.0, 4.0])
        expected = _serial(
            topo,
            [1.0, 2.0, 3.0, 4.0],
            algorithm="push_sum",
            epsilon=1e-9,
            seed=4,
        )
        assert _bit_identical(got, expected)
