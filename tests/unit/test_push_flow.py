"""Unit tests for the push-flow (PF) local state machine (Fig. 1)."""

import numpy as np
import pytest

from repro.algorithms.push_flow import FlowPayload, PushFlow
from repro.algorithms.state import MassPair
from repro.exceptions import ConfigurationError, ProtocolError


def make_node(value=6.0, weight=1.0, neighbors=(1, 2), variant="recompute"):
    return PushFlow(0, neighbors, MassPair(value, weight), variant=variant)


class TestPushFlowLocal:
    def test_initial_state(self):
        node = make_node()
        assert node.estimate_pair().value == 6.0
        flows = node.local_flows()
        assert set(flows) == {1, 2}
        assert all(f.is_zero() for f in flows.values())

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            make_node(variant="bogus")

    def test_virtual_send_halves_estimate(self):
        node = make_node(6.0, 1.0)
        payload = node.make_message(1)
        # Flow now carries half the initial estimate.
        assert payload.flow.value == 3.0
        assert payload.flow.weight == 0.5
        # Local estimate halved (estimate = v0 - sum flows).
        assert node.estimate_pair().value == 3.0

    def test_send_is_idempotent_wrt_loss(self):
        # Losing the physical message does NOT lose mass: the flow variable
        # still records the transfer, and the next successful send of the
        # whole variable repairs everything.
        node = make_node(6.0, 1.0)
        node.make_message(1)  # lost
        payload = node.make_message(1)  # second attempt, includes history
        assert payload.flow.value == 3.0 + 1.5

    def test_receive_overwrites_with_negation(self):
        node = make_node()
        node.on_receive(1, FlowPayload(flow=MassPair(2.5, 0.25)))
        assert node.local_flows()[1].value == -2.5
        assert node.estimate_pair().value == 6.0 + 2.5

    def test_flow_conservation_after_exchange(self):
        a = PushFlow(0, [1], MassPair(2.0, 1.0))
        b = PushFlow(1, [0], MassPair(4.0, 1.0))
        payload = a.make_message(1)
        b.on_receive(0, payload)
        assert b.local_flows()[0].exactly_equals(-a.local_flows()[1])
        # Flow conservation implies mass conservation.
        total = a.estimate_pair() + b.estimate_pair()
        assert total.value == 6.0
        assert total.weight == 2.0

    def test_bit_flip_recovery_via_next_exchange(self):
        a = PushFlow(0, [1], MassPair(2.0, 1.0))
        b = PushFlow(1, [0], MassPair(4.0, 1.0))
        b.on_receive(0, a.make_message(1))
        # Corrupt b's stored flow (memory soft error).
        b.inject_flow_bit_flip(0, 40)
        corrupted_estimate = b.estimate_pair()
        # Next exchange from a heals b completely (recompute variant).
        b.on_receive(0, a.make_message(1))
        healed = b.local_flows()[0]
        assert healed.exactly_equals(-a.local_flows()[1])
        assert b.estimate_pair().is_finite()

    def test_incremental_variant_tracks_recompute_failure_free(self):
        a1 = make_node(variant="recompute")
        a2 = make_node(variant="incremental")
        for node in (a1, a2):
            node.make_message(1)
            node.on_receive(2, FlowPayload(flow=MassPair(1.0, 0.5)))
        assert a1.estimate_pair().value == pytest.approx(
            a2.estimate_pair().value, rel=1e-15
        )

    def test_link_failure_zeroes_flow_and_shifts_estimate(self):
        node = make_node(6.0, 1.0, neighbors=(1, 2))
        node.on_receive(1, FlowPayload(flow=MassPair(-2.0, 0.0)))
        before = node.estimate_pair().value  # 6 - 2 = 4
        assert before == 4.0
        node.on_link_failed(1)
        # Zeroing the flow jumps the estimate by the flow value.
        assert node.estimate_pair().value == 6.0
        assert node.neighbors == (2,)

    def test_link_failure_incremental_variant(self):
        node = make_node(6.0, 1.0, variant="incremental")
        node.on_receive(1, FlowPayload(flow=MassPair(-2.0, 0.0)))
        node.on_link_failed(1)
        assert node.estimate_pair().value == 6.0

    def test_max_flow_magnitude(self):
        node = make_node()
        assert node.max_flow_magnitude() == 0.0
        node.on_receive(1, FlowPayload(flow=MassPair(-7.0, 0.0)))
        assert node.max_flow_magnitude() == 7.0

    def test_conserved_mass_is_initial(self):
        node = make_node(6.0, 1.0)
        node.make_message(1)
        assert node.conserved_mass().value == 6.0

    def test_protocol_errors(self):
        node = make_node()
        with pytest.raises(ProtocolError):
            node.make_message(7)
        with pytest.raises(ProtocolError):
            node.on_receive(7, FlowPayload(flow=MassPair(0.0, 0.0)))

    def test_vector_flow(self):
        node = PushFlow(0, [1], MassPair(np.array([4.0, 8.0]), 1.0))
        payload = node.make_message(1)
        np.testing.assert_array_equal(payload.flow.value, [2.0, 4.0])
