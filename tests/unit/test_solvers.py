"""Unit tests for the distributed Jacobi/CG solvers."""

import numpy as np
import pytest

from repro.exceptions import LinalgError
from repro.linalg import (
    ExactReductionService,
    ReductionService,
    distributed_cg,
    distributed_jacobi,
)
from repro.topology import hypercube, ring


@pytest.fixture
def spd_system():
    rng = np.random.default_rng(0)
    dim = 24
    m = rng.standard_normal((dim, dim))
    a = m @ m.T + dim * np.eye(dim)
    b = rng.standard_normal(dim)
    return a, b


@pytest.fixture
def diag_dominant_system():
    rng = np.random.default_rng(1)
    dim = 16
    m = rng.standard_normal((dim, dim)) * 0.1
    a = m + np.diag(np.abs(m).sum(axis=1) + 1.0)
    b = rng.standard_normal(dim)
    return a, b


class TestCG:
    def test_exact_service_matches_numpy(self, spd_system):
        a, b = spd_system
        topo = hypercube(3)
        result = distributed_cg(a, b, ExactReductionService(topo), tolerance=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, np.linalg.solve(a, b), atol=1e-8)

    def test_gossip_service(self, spd_system):
        a, b = spd_system
        topo = hypercube(3)
        service = ReductionService(topo, algorithm="push_cancel_flow", seed=0)
        result = distributed_cg(a, b, service, tolerance=1e-10)
        assert result.converged
        assert result.residual < 1e-9
        # Per-node scalar estimates disagree only within reduction accuracy.
        assert result.solution_spread < 1e-8

    def test_iteration_count_like_cg(self, spd_system):
        # CG on an SPD system converges in <= dim iterations (exact
        # arithmetic); well-conditioned systems take far fewer.
        a, b = spd_system
        result = distributed_cg(
            a, b, ExactReductionService(hypercube(3)), tolerance=1e-10
        )
        assert result.iterations <= a.shape[0]

    def test_rejects_nonsymmetric(self):
        topo = ring(4)
        with pytest.raises(LinalgError):
            distributed_cg(
                np.triu(np.ones((4, 4))) + np.eye(4),
                np.ones(4),
                ExactReductionService(topo),
            )

    def test_rejects_bad_b(self, spd_system):
        a, _ = spd_system
        with pytest.raises(LinalgError):
            distributed_cg(a, np.ones(3), ExactReductionService(hypercube(3)))

    def test_rejects_nonsquare(self):
        with pytest.raises(LinalgError):
            distributed_cg(
                np.zeros((3, 4)), np.ones(3), ExactReductionService(ring(3))
            )

    def test_zero_rhs(self, spd_system):
        a, _ = spd_system
        result = distributed_cg(
            a, np.zeros(a.shape[0]), ExactReductionService(hypercube(3))
        )
        np.testing.assert_allclose(result.x, 0.0, atol=1e-12)


class TestJacobi:
    def test_exact_service_matches_numpy(self, diag_dominant_system):
        a, b = diag_dominant_system
        topo = hypercube(3)
        result = distributed_jacobi(
            a, b, ExactReductionService(topo), iterations=500, tolerance=1e-12
        )
        assert result.converged
        np.testing.assert_allclose(result.x, np.linalg.solve(a, b), atol=1e-8)

    def test_gossip_service(self, diag_dominant_system):
        a, b = diag_dominant_system
        topo = hypercube(3)
        service = ReductionService(topo, algorithm="push_cancel_flow", seed=2)
        result = distributed_jacobi(a, b, service, iterations=500)
        assert result.converged

    def test_rejects_non_dominant(self, spd_system):
        a, b = spd_system
        a = a - np.diag(np.diag(a))  # zero diagonal
        with pytest.raises(LinalgError):
            distributed_jacobi(a, b, ExactReductionService(hypercube(3)))

    def test_rejects_weakly_dominant(self):
        a = np.array([[1.0, 1.0], [0.0, 1.0]])
        with pytest.raises(LinalgError):
            distributed_jacobi(a, np.ones(2), ExactReductionService(ring(3)))


class TestPluggableFaultTolerance:
    def test_cg_with_push_flow_vs_pcf(self, spd_system):
        # Both work failure-free; the point is that the solver is agnostic.
        a, b = spd_system
        topo = hypercube(3)
        for algorithm in ("push_flow", "push_cancel_flow"):
            service = ReductionService(topo, algorithm=algorithm, seed=3)
            result = distributed_cg(a, b, service, tolerance=1e-8)
            assert result.converged, algorithm
