"""Unit tests for the push-sum algorithm's local state machine."""

import numpy as np
import pytest

from repro.algorithms.push_sum import PushSum, PushSumPayload
from repro.algorithms.state import MassPair
from repro.exceptions import ProtocolError


def make_node(value=4.0, weight=1.0, neighbors=(1, 2)):
    return PushSum(0, neighbors, MassPair(value, weight))


class TestPushSumLocal:
    def test_initial_estimate(self):
        node = make_node(4.0, 2.0)
        assert node.estimate() == 2.0

    def test_make_message_halves_mass(self):
        node = make_node(4.0, 1.0)
        payload = node.make_message(1)
        assert payload.mass.value == 2.0
        assert payload.mass.weight == 0.5
        assert node.estimate_pair().value == 2.0

    def test_receive_accumulates(self):
        node = make_node(4.0, 1.0)
        node.on_receive(1, PushSumPayload(mass=MassPair(1.0, 0.5)))
        pair = node.estimate_pair()
        assert pair.value == 5.0
        assert pair.weight == 1.5

    def test_send_then_receive_round_trip(self):
        a = PushSum(0, [1], MassPair(2.0, 1.0))
        b = PushSum(1, [0], MassPair(4.0, 1.0))
        payload = a.make_message(1)
        b.on_receive(0, payload)
        # Total mass conserved.
        total = a.estimate_pair() + b.estimate_pair()
        assert total.value == 6.0
        assert total.weight == 2.0

    def test_estimate_ratio_invariant_under_send(self):
        node = make_node(4.0, 2.0)
        before = node.estimate()
        node.make_message(1)
        assert node.estimate() == before  # halving preserves the ratio

    def test_rejects_non_neighbor_send(self):
        node = make_node()
        with pytest.raises(ProtocolError):
            node.make_message(5)

    def test_rejects_non_neighbor_receive(self):
        node = make_node()
        with pytest.raises(ProtocolError):
            node.on_receive(9, PushSumPayload(mass=MassPair(1.0, 1.0)))

    def test_self_neighbor_rejected(self):
        with pytest.raises(ProtocolError):
            PushSum(0, [0, 1], MassPair(1.0, 1.0))

    def test_duplicate_neighbors_rejected(self):
        with pytest.raises(ProtocolError):
            PushSum(0, [1, 1], MassPair(1.0, 1.0))

    def test_vector_payloads(self):
        node = PushSum(0, [1], MassPair(np.array([2.0, 4.0]), 1.0))
        payload = node.make_message(1)
        np.testing.assert_array_equal(payload.mass.value, [1.0, 2.0])

    def test_link_failure_removes_neighbor(self):
        node = make_node(neighbors=(1, 2))
        node.on_link_failed(1)
        assert node.neighbors == (2,)
        with pytest.raises(ProtocolError):
            node.make_message(1)

    def test_lost_message_loses_mass(self):
        # The defining fragility: a dropped message removes mass forever.
        node = make_node(4.0, 1.0)
        node.make_message(1)  # payload never delivered
        assert node.estimate_pair().value == 2.0  # half the mass is gone
