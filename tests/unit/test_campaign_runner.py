"""Campaign runner: retries, checkpoint/resume, parallel workers, timeouts."""

import json

import pytest

from repro.campaigns import CampaignSpec, load_results, run_campaign
from repro.campaigns.runner import execute_cell
from repro.exceptions import ConfigurationError


def tiny_spec(**overrides):
    raw = {
        "name": "tiny",
        "algorithms": ["push_flow"],
        "topologies": [{"family": "hypercube", "n": 8}],
        "faults": [{"kind": "none"}],
        "seeds": [0, 1],
        "rounds": 30,
        "epsilon": 1e-3,
    }
    raw.update(overrides)
    return CampaignSpec.from_dict(raw)


class TestExecuteCell:
    def test_failure_free_cell_converges(self):
        cell = tiny_spec(rounds=80, epsilon=1e-6).expand()[0]
        record = execute_cell(cell)
        assert record["status"] == "ok"
        assert record["converged"] is True
        assert record["rounds_to_tolerance"] is not None
        assert record["event_round"] is None
        assert record["recovery_rounds"] is None

    def test_link_failure_cell_reports_recovery(self):
        cell = tiny_spec(
            faults=[{"kind": "link_failure", "round": 20}],
            rounds=120,
            epsilon=1e-6,
        ).expand()[0]
        record = execute_cell(cell)
        assert record["event_round"] == 20
        assert record["recovery_rounds"] is not None
        assert record["recovered"] in (True, False)


class TestSerialRetries:
    def test_flaky_executor_retried_and_accounted(self, tmp_path):
        spec = tiny_spec(seeds=[0])
        calls = {"n": 0}

        def flaky(cell):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            record = execute_cell(cell)
            return record

        run = run_campaign(spec, tmp_path, retries=2, executor=flaky)
        assert (run.ok, run.failed, run.retries_used) == (1, 0, 1)
        (record,) = load_results(tmp_path).values()
        assert record["status"] == "ok"
        assert record["attempts"] == 2

    def test_exhausted_retries_record_failure(self, tmp_path):
        spec = tiny_spec(seeds=[0])

        def always_fails(cell):
            raise RuntimeError("broken executor")

        run = run_campaign(spec, tmp_path, retries=1, executor=always_fails)
        assert (run.ok, run.failed, run.retries_used) == (0, 1, 1)
        (record,) = load_results(tmp_path).values()
        assert record["status"] == "failed"
        assert record["attempts"] == 2
        assert "broken executor" in record["error"]

    def test_zero_retries_means_single_attempt(self, tmp_path):
        spec = tiny_spec(seeds=[0])
        calls = {"n": 0}

        def always_fails(cell):
            calls["n"] += 1
            raise RuntimeError("nope")

        run = run_campaign(spec, tmp_path, retries=0, executor=always_fails)
        assert calls["n"] == 1
        assert run.retries_used == 0


class TestCheckpointResume:
    def test_resume_skips_recorded_cells(self, tmp_path):
        spec = tiny_spec()
        executed = []

        def tracking(cell):
            executed.append(cell["cell_id"])
            return execute_cell(cell)

        first = run_campaign(spec, tmp_path, executor=tracking)
        assert (first.executed, first.skipped) == (2, 0)

        second = run_campaign(spec, tmp_path, executor=tracking)
        assert (second.executed, second.skipped) == (0, 2)
        assert len(executed) == 2  # nothing re-ran

    def test_resume_after_partial_results(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path)
        results = tmp_path / "results.jsonl"
        lines = results.read_text().splitlines()
        results.write_text(lines[0] + "\n")  # drop the second cell's record

        rerun = run_campaign(spec, tmp_path)
        assert (rerun.skipped, rerun.executed) == (1, 1)
        assert len(load_results(tmp_path)) == 2

    def test_truncated_trailing_line_is_rerun(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path)
        results = tmp_path / "results.jsonl"
        lines = results.read_text().splitlines()
        results.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])

        rerun = run_campaign(spec, tmp_path)
        assert (rerun.skipped, rerun.executed) == (1, 1)

    def test_fresh_run_discards_results(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path)
        rerun = run_campaign(spec, tmp_path, resume=False)
        assert (rerun.skipped, rerun.executed) == (0, 2)

    def test_mismatched_campaign_dir_rejected(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path)
        other = tiny_spec(name="other")
        with pytest.raises(ConfigurationError, match="different campaign"):
            run_campaign(other, tmp_path)

    def test_campaign_json_written(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path)
        on_disk = json.loads((tmp_path / "campaign.json").read_text())
        assert on_disk == spec.to_dict()


class TestValidation:
    def test_bad_worker_retry_timeout_values(self, tmp_path):
        spec = tiny_spec()
        with pytest.raises(ConfigurationError, match="workers"):
            run_campaign(spec, tmp_path, workers=-1)
        with pytest.raises(ConfigurationError, match="retries"):
            run_campaign(spec, tmp_path, retries=-1)
        with pytest.raises(ConfigurationError, match="timeout"):
            run_campaign(spec, tmp_path, workers=1, timeout=0)


class TestParallel:
    def test_two_workers_complete_the_grid(self, tmp_path):
        spec = tiny_spec()
        run = run_campaign(spec, tmp_path, workers=2, timeout=120)
        assert (run.ok, run.failed) == (2, 0)
        records = load_results(tmp_path)
        assert len(records) == 2
        assert all(r["status"] == "ok" for r in records.values())

    def test_timeout_terminates_and_records_failure(self, tmp_path):
        # A cell that cannot finish inside the deadline: huge round budget.
        spec = tiny_spec(seeds=[0], rounds=5_000_000, epsilon=1e-15)
        run = run_campaign(spec, tmp_path, workers=1, timeout=0.5, retries=0)
        assert (run.ok, run.failed) == (0, 1)
        (record,) = load_results(tmp_path).values()
        assert record["status"] == "failed"
        assert "timeout" in record["error"]


class TestObservabilityFields:
    def test_cell_record_carries_alert_accounting(self):
        cell = tiny_spec(rounds=40).expand()[0]
        record = execute_cell(cell)
        assert record["alerts_total"] == 0
        assert record["alerts"] == {}
        assert record["flight_dumps"] == []

    def test_link_failure_cell_records_flight_dump(self, tmp_path):
        cell = tiny_spec(
            faults=[{"kind": "link_failure", "round": 20}], rounds=60
        ).expand()[0]
        cell["flight_dir"] = str(tmp_path / "flight")
        record = execute_cell(cell)
        assert record["status"] == "ok"
        assert len(record["flight_dumps"]) == 1
        dump = record["flight_dumps"][0]
        assert "flight_link_failure_r20" in dump
        assert json.loads(open(dump).read())["reason"] == "link_failure"

    def test_run_campaign_results_include_dump_paths(self, tmp_path):
        spec = tiny_spec(
            faults=[{"kind": "link_failure", "round": 20}],
            seeds=[0],
            rounds=60,
        )
        run_campaign(spec, tmp_path)
        (record,) = load_results(tmp_path).values()
        assert record["flight_dumps"]
        for dump in record["flight_dumps"]:
            assert json.loads(open(dump).read())["reason"] == "link_failure"
        # Dumps live under the campaign's own flight/<cell> directory.
        assert str(tmp_path / "flight") in record["flight_dumps"][0]

    def test_sample_rate_cell_still_detects(self, tmp_path):
        # A thinned sampler must not break cell execution or accounting.
        cell = tiny_spec(
            faults=[{"kind": "link_failure", "round": 20}],
            rounds=60,
            telemetry_sample_rate=0.25,
        ).expand()[0]
        record = execute_cell(cell)
        assert record["status"] == "ok"
        assert "alerts_total" in record


class TestTimestampsAndMetrics:
    def test_records_are_stamped_at_append_time(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path)
        records = load_results(tmp_path)
        stamps = [r["recorded_at"] for r in records.values()]
        assert all(isinstance(s, float) and s > 0 for s in stamps)
        # Appends happen in execution order, so stamps are monotone.
        ordered = [
            json.loads(line)["recorded_at"]
            for line in (tmp_path / "results.jsonl").read_text().splitlines()
        ]
        assert ordered == sorted(ordered)

    def test_metrics_every_exports_in_flight(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path, metrics_every=1)
        metrics_dir = tmp_path / "metrics"
        for suffix in ("jsonl", "csv", "prom"):
            assert (metrics_dir / f"metrics.{suffix}").stat().st_size > 0
        prom = (metrics_dir / "metrics.prom").read_text()
        assert 'campaign="tiny"' in prom
        assert "campaign_cells" in prom

    def test_metrics_disabled_by_default(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path)
        assert not (tmp_path / "metrics").exists()

    def test_negative_metrics_every_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_campaign(tiny_spec(), tmp_path, metrics_every=-1)
