"""Campaign runner: retries, checkpoint/resume, parallel workers, timeouts."""

import glob
import json
import os

import pytest

from repro.campaigns import CampaignSpec, load_results, run_campaign
from repro.campaigns.runner import _mp_context, execute_cell
from repro.exceptions import ConfigurationError


def leaked_group_segments():
    """Shared-memory segments of this process's batched groups, if any."""
    return glob.glob(f"/dev/shm/repro-grp-{os.getpid()}-*")


def tiny_spec(**overrides):
    raw = {
        "name": "tiny",
        "algorithms": ["push_flow"],
        "topologies": [{"family": "hypercube", "n": 8}],
        "faults": [{"kind": "none"}],
        "seeds": [0, 1],
        "rounds": 30,
        "epsilon": 1e-3,
    }
    raw.update(overrides)
    return CampaignSpec.from_dict(raw)


class TestExecuteCell:
    def test_failure_free_cell_converges(self):
        cell = tiny_spec(rounds=80, epsilon=1e-6).expand()[0]
        record = execute_cell(cell)
        assert record["status"] == "ok"
        assert record["converged"] is True
        assert record["rounds_to_tolerance"] is not None
        assert record["event_round"] is None
        assert record["recovery_rounds"] is None

    def test_link_failure_cell_reports_recovery(self):
        cell = tiny_spec(
            faults=[{"kind": "link_failure", "round": 20}],
            rounds=120,
            epsilon=1e-6,
        ).expand()[0]
        record = execute_cell(cell)
        assert record["event_round"] == 20
        assert record["recovery_rounds"] is not None
        assert record["recovered"] in (True, False)


class TestSerialRetries:
    def test_flaky_executor_retried_and_accounted(self, tmp_path):
        spec = tiny_spec(seeds=[0])
        calls = {"n": 0}

        def flaky(cell):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            record = execute_cell(cell)
            return record

        run = run_campaign(spec, tmp_path, retries=2, executor=flaky)
        assert (run.ok, run.failed, run.retries_used) == (1, 0, 1)
        (record,) = load_results(tmp_path).values()
        assert record["status"] == "ok"
        assert record["attempts"] == 2

    def test_exhausted_retries_record_failure(self, tmp_path):
        spec = tiny_spec(seeds=[0])

        def always_fails(cell):
            raise RuntimeError("broken executor")

        run = run_campaign(spec, tmp_path, retries=1, executor=always_fails)
        assert (run.ok, run.failed, run.retries_used) == (0, 1, 1)
        (record,) = load_results(tmp_path).values()
        assert record["status"] == "failed"
        assert record["attempts"] == 2
        assert "broken executor" in record["error"]

    def test_zero_retries_means_single_attempt(self, tmp_path):
        spec = tiny_spec(seeds=[0])
        calls = {"n": 0}

        def always_fails(cell):
            calls["n"] += 1
            raise RuntimeError("nope")

        run = run_campaign(spec, tmp_path, retries=0, executor=always_fails)
        assert calls["n"] == 1
        assert run.retries_used == 0


class TestCheckpointResume:
    def test_resume_skips_recorded_cells(self, tmp_path):
        spec = tiny_spec()
        executed = []

        def tracking(cell):
            executed.append(cell["cell_id"])
            return execute_cell(cell)

        first = run_campaign(spec, tmp_path, executor=tracking)
        assert (first.executed, first.skipped) == (2, 0)

        second = run_campaign(spec, tmp_path, executor=tracking)
        assert (second.executed, second.skipped) == (0, 2)
        assert len(executed) == 2  # nothing re-ran

    def test_resume_after_partial_results(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path)
        results = tmp_path / "results.jsonl"
        lines = results.read_text().splitlines()
        results.write_text(lines[0] + "\n")  # drop the second cell's record

        rerun = run_campaign(spec, tmp_path)
        assert (rerun.skipped, rerun.executed) == (1, 1)
        assert len(load_results(tmp_path)) == 2

    def test_truncated_trailing_line_is_rerun(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path)
        results = tmp_path / "results.jsonl"
        lines = results.read_text().splitlines()
        results.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])

        rerun = run_campaign(spec, tmp_path)
        assert (rerun.skipped, rerun.executed) == (1, 1)

    def test_fresh_run_discards_results(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path)
        rerun = run_campaign(spec, tmp_path, resume=False)
        assert (rerun.skipped, rerun.executed) == (0, 2)

    def test_mismatched_campaign_dir_rejected(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path)
        other = tiny_spec(name="other")
        with pytest.raises(ConfigurationError, match="different campaign"):
            run_campaign(other, tmp_path)

    def test_campaign_json_written(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path)
        on_disk = json.loads((tmp_path / "campaign.json").read_text())
        assert on_disk == spec.to_dict()


class TestValidation:
    def test_bad_worker_retry_timeout_values(self, tmp_path):
        spec = tiny_spec()
        with pytest.raises(ConfigurationError, match="workers"):
            run_campaign(spec, tmp_path, workers=-1)
        with pytest.raises(ConfigurationError, match="retries"):
            run_campaign(spec, tmp_path, retries=-1)
        with pytest.raises(ConfigurationError, match="timeout"):
            run_campaign(spec, tmp_path, workers=1, timeout=0)


class TestParallel:
    def test_two_workers_complete_the_grid(self, tmp_path):
        spec = tiny_spec()
        run = run_campaign(spec, tmp_path, workers=2, timeout=120)
        assert (run.ok, run.failed) == (2, 0)
        records = load_results(tmp_path)
        assert len(records) == 2
        assert all(r["status"] == "ok" for r in records.values())

    def test_timeout_terminates_and_records_failure(self, tmp_path):
        # A cell that cannot finish inside the deadline: huge round budget.
        spec = tiny_spec(seeds=[0], rounds=5_000_000, epsilon=1e-15)
        run = run_campaign(spec, tmp_path, workers=1, timeout=0.5, retries=0)
        assert (run.ok, run.failed) == (0, 1)
        (record,) = load_results(tmp_path).values()
        assert record["status"] == "failed"
        assert "timeout" in record["error"]


class TestStartMethod:
    def test_unavailable_start_method_rejected(self):
        with pytest.raises(ConfigurationError, match="start method"):
            _mp_context("threads")

    def test_default_is_explicit_per_platform(self):
        import sys

        ctx = _mp_context()
        expected = "fork" if sys.platform.startswith("linux") else "spawn"
        assert ctx.get_start_method() == expected

    def test_spawn_context_resolves(self):
        assert _mp_context("spawn").get_start_method() == "spawn"

    def test_parallel_run_under_spawn(self, tmp_path):
        # spawn re-imports worker modules instead of inheriting the parent
        # image (the macOS/Windows default), so it catches any reliance on
        # fork-inherited state.
        spec = tiny_spec()
        run = run_campaign(
            spec, tmp_path, workers=2, timeout=120, start_method="spawn"
        )
        assert (run.ok, run.failed) == (2, 0)
        assert all(
            r["status"] == "ok" for r in load_results(tmp_path).values()
        )


class TestParallelBatchedGroups:
    def batched_spec(self, **overrides):
        raw = {
            "name": "tiny-batched",
            "engine": "batched",
            "algorithms": ["push_flow", "push_cancel_flow"],
            "topologies": [{"family": "hypercube", "n": 8}],
            "faults": [{"kind": "none"}, {"kind": "message_loss", "rate": 0.1}],
            "seeds": [0, 1],
            "rounds": 40,
            "epsilon": 1e-6,
        }
        raw.update(overrides)
        return CampaignSpec.from_dict(raw)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_parallel_groups_match_serial_batched(
        self, tmp_path, start_method
    ):
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        serial = run_campaign(self.batched_spec(), serial_dir)
        parallel = run_campaign(
            self.batched_spec(),
            parallel_dir,
            workers=2,
            timeout=120,
            start_method=start_method,
        )
        assert (serial.ok, parallel.ok) == (8, 8)
        varying = {"wall_s", "kernel_seconds", "recorded_at"}
        serial_records = load_results(serial_dir)
        for cell_id, record in load_results(parallel_dir).items():
            ref = serial_records[cell_id]
            for key in ref:
                if key not in varying:
                    assert ref[key] == record[key], (cell_id, key)
        assert leaked_group_segments() == []

    def test_group_timeout_records_failures_and_releases_shm(
        self, tmp_path, monkeypatch
    ):
        import multiprocessing
        import time

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("stalled-worker injection relies on fork inheritance")
        from repro.campaigns import runner as runner_mod

        # Fork-started workers inherit the patched module, so every
        # attempt stalls past its deadline and must be terminated.
        monkeypatch.setattr(
            runner_mod,
            "_execute_cells_batched",
            lambda cells: time.sleep(60),
        )
        spec = self.batched_spec(
            algorithms=["push_flow"], seeds=[0], faults=[{"kind": "none"}]
        )
        run = run_campaign(
            spec,
            tmp_path,
            workers=1,
            timeout=0.3,
            retries=1,
            start_method="fork",
        )
        assert (run.ok, run.failed, run.retries_used) == (0, 1, 1)
        for record in load_results(tmp_path).values():
            assert record["status"] == "failed"
            assert "timeout" in record["error"]
            assert record["attempts"] == 2
        # Every attempt's shared-memory segment must be unlinked, on the
        # timeout path and on the retry path alike.
        assert leaked_group_segments() == []

    def test_worker_error_is_retried_then_recorded(self):
        # An in-worker failure (not a crash): an algorithm with no batched
        # implementation makes _execute_cells_batched raise in the worker,
        # which ships the error home instead of dying silently.
        spec = self.batched_spec(
            algorithms=["push_flow"], seeds=[0], faults=[{"kind": "none"}]
        )
        cells = [
            {**c, "algorithm": "push_flow_incremental"} for c in spec.expand()
        ]
        from repro.campaigns import runner as runner_mod

        records = []
        stats = runner_mod._run_parallel_batched(
            cells,
            workers=1,
            timeout=30,
            retries=1,
            on_record=records.append,
        )
        assert stats["failed"] == len(cells)
        assert stats["retries_used"] == 1
        assert all(r["status"] == "failed" for r in records)
        assert all(r["error"] for r in records)
        assert leaked_group_segments() == []


class TestObservabilityFields:
    def test_cell_record_carries_alert_accounting(self):
        cell = tiny_spec(rounds=40).expand()[0]
        record = execute_cell(cell)
        assert record["alerts_total"] == 0
        assert record["alerts"] == {}
        assert record["flight_dumps"] == []

    def test_link_failure_cell_records_flight_dump(self, tmp_path):
        cell = tiny_spec(
            faults=[{"kind": "link_failure", "round": 20}], rounds=60
        ).expand()[0]
        cell["flight_dir"] = str(tmp_path / "flight")
        record = execute_cell(cell)
        assert record["status"] == "ok"
        assert len(record["flight_dumps"]) == 1
        dump = record["flight_dumps"][0]
        assert "flight_link_failure_r20" in dump
        assert json.loads(open(dump).read())["reason"] == "link_failure"

    def test_run_campaign_results_include_dump_paths(self, tmp_path):
        spec = tiny_spec(
            faults=[{"kind": "link_failure", "round": 20}],
            seeds=[0],
            rounds=60,
        )
        run_campaign(spec, tmp_path)
        (record,) = load_results(tmp_path).values()
        assert record["flight_dumps"]
        for dump in record["flight_dumps"]:
            assert json.loads(open(dump).read())["reason"] == "link_failure"
        # Dumps live under the campaign's own flight/<cell> directory.
        assert str(tmp_path / "flight") in record["flight_dumps"][0]

    def test_sample_rate_cell_still_detects(self, tmp_path):
        # A thinned sampler must not break cell execution or accounting.
        cell = tiny_spec(
            faults=[{"kind": "link_failure", "round": 20}],
            rounds=60,
            telemetry_sample_rate=0.25,
        ).expand()[0]
        record = execute_cell(cell)
        assert record["status"] == "ok"
        assert "alerts_total" in record


class TestTimestampsAndMetrics:
    def test_records_are_stamped_at_append_time(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path)
        records = load_results(tmp_path)
        stamps = [r["recorded_at"] for r in records.values()]
        assert all(isinstance(s, float) and s > 0 for s in stamps)
        # Appends happen in execution order, so stamps are monotone.
        ordered = [
            json.loads(line)["recorded_at"]
            for line in (tmp_path / "results.jsonl").read_text().splitlines()
        ]
        assert ordered == sorted(ordered)

    def test_metrics_every_exports_in_flight(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path, metrics_every=1)
        metrics_dir = tmp_path / "metrics"
        for suffix in ("jsonl", "csv", "prom"):
            assert (metrics_dir / f"metrics.{suffix}").stat().st_size > 0
        prom = (metrics_dir / "metrics.prom").read_text()
        assert 'campaign="tiny"' in prom
        assert "campaign_cells" in prom

    def test_metrics_disabled_by_default(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path)
        assert not (tmp_path / "metrics").exists()

    def test_negative_metrics_every_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_campaign(tiny_spec(), tmp_path, metrics_every=-1)


class TestMetricsAggregation:
    """Worker registries ride the result channel; merged == serial, exactly.

    The live /metrics plane is only trustworthy if parallel execution
    reports the same counters a serial run would — counters from
    disjoint processes sum exactly (DESIGN.md §5f), so equality here is
    ``==``, never approx.
    """

    ENGINE_COUNTERS = (
        "engine_rounds_total",
        "engine_messages_sent_total",
        "engine_messages_delivered_total",
    )

    def counters(self, run, engine, backend):
        labels = {
            "algorithm": "push_flow",
            "engine": engine,
            "backend": backend,
        }
        return {
            name: run.metrics.counter(name).value(**labels)
            for name in self.ENGINE_COUNTERS
        }

    def test_per_cell_workers_match_serial(self, tmp_path):
        spec = tiny_spec(rounds=40)
        serial = run_campaign(spec, tmp_path / "serial")
        parallel = run_campaign(
            spec, tmp_path / "parallel", workers=2, timeout=120
        )
        assert (serial.ok, parallel.ok) == (2, 2)
        expected = self.counters(serial, "object", "none")
        assert expected["engine_rounds_total"] > 0
        assert expected["engine_messages_sent_total"] > 0
        assert self.counters(parallel, "object", "none") == expected

    def test_batched_group_workers_match_serial(self, tmp_path):
        spec = CampaignSpec.from_dict(
            {
                "name": "tiny-batched",
                "engine": "batched",
                "algorithms": ["push_flow"],
                "faults": [{"kind": "none"}, {"kind": "message_loss", "rate": 0.1}],
                "topologies": [{"family": "hypercube", "n": 8}],
                "seeds": [0, 1],
                "rounds": 40,
                "epsilon": 1e-6,
            }
        )
        serial = run_campaign(spec, tmp_path / "serial")
        parallel = run_campaign(
            spec, tmp_path / "parallel", workers=2, timeout=120
        )
        assert (serial.ok, parallel.ok) == (4, 4)
        expected = self.counters(serial, "batched", "numpy")
        assert expected["engine_rounds_total"] > 0
        assert self.counters(parallel, "batched", "numpy") == expected
        assert leaked_group_segments() == []

    def test_snapshots_never_reach_results_jsonl(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path, workers=2, timeout=120)
        for line in (tmp_path / "results.jsonl").read_text().splitlines():
            assert "_metrics_snapshot" not in json.loads(line)

    def test_batched_records_carry_kernel_seconds(self, tmp_path):
        spec = tiny_spec(name="tiny-b", engine="batched", epsilon=1e-6)
        run_campaign(spec, tmp_path)
        for record in load_results(tmp_path).values():
            assert record["kernel_seconds"] > 0
        hist = [
            m
            for m in run_campaign(
                spec, tmp_path, resume=False
            ).metrics.snapshot()["metrics"]
            if m["name"] == "repro_kernel_seconds"
        ]
        (kernel,) = hist
        assert kernel["kind"] == "histogram"
        labels = kernel["samples"][0]["labels"]
        assert labels["algorithm"] == "push_flow"
        assert labels["backend"] == "numpy"
        assert labels["phase"] == "kernel"

    def test_object_records_have_null_kernel_seconds(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path)
        assert all(
            r["kernel_seconds"] is None
            for r in load_results(tmp_path).values()
        )

    def test_export_failures_counted_not_swallowed(self, tmp_path, monkeypatch):
        import repro.analysis.campaigns.export as export_mod

        def boom(*_args, **_kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(export_mod, "export_records_metrics", boom)
        run = run_campaign(tiny_spec(), tmp_path, metrics_every=1)
        assert run.ok == 2
        errors = run.metrics.counter("campaign_export_errors_total")
        # One failure per recorded cell plus the end-of-sweep export.
        assert errors.value(campaign="tiny") == 3.0
