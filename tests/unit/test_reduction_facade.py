"""Unit tests for the run_reduction facade."""

import numpy as np
import pytest

from repro import AggregateKind, default_round_cap, run_reduction
from repro.exceptions import ConfigurationError
from repro.faults.events import single_link_failure
from repro.faults.message_loss import IidMessageLoss
from repro.topology import hypercube


@pytest.fixture
def topo():
    return hypercube(4)


@pytest.fixture
def data(topo):
    return np.random.default_rng(0).uniform(size=topo.n)


class TestValidation:
    def test_data_length(self, topo):
        with pytest.raises(ConfigurationError):
            run_reduction(topo, [1.0])

    def test_epsilon_range(self, topo, data):
        with pytest.raises(ConfigurationError):
            run_reduction(topo, data, epsilon=0.0)
        with pytest.raises(ConfigurationError):
            run_reduction(topo, data, epsilon=1.5)

    def test_unknown_algorithm(self, topo, data):
        with pytest.raises(ConfigurationError):
            run_reduction(topo, data, algorithm="magic")

    def test_unknown_backend(self, topo, data):
        with pytest.raises(ConfigurationError):
            run_reduction(topo, data, backend="gpu")

    def test_default_round_cap_properties(self):
        assert default_round_cap(2) >= 300
        assert default_round_cap(1 << 15) > default_round_cap(1 << 5)
        with pytest.raises(ConfigurationError):
            default_round_cap(0)


class TestBackendSelection:
    def test_auto_uses_vector_when_possible(self, topo, data):
        result = run_reduction(topo, data, algorithm="push_cancel_flow")
        assert result.backend == "vector"

    def test_auto_falls_back_for_faults(self, topo, data):
        result = run_reduction(
            topo,
            data,
            algorithm="push_cancel_flow",
            message_fault=IidMessageLoss(0.1, seed=0),
            max_rounds=100,
        )
        assert result.backend == "object"

    def test_auto_falls_back_for_history(self, topo, data):
        result = run_reduction(
            topo, data, record_history=True, max_rounds=50
        )
        assert result.backend == "object"
        assert result.history is not None
        assert result.history.rounds == result.rounds

    def test_auto_falls_back_for_nonvector_algorithm(self, topo, data):
        result = run_reduction(
            topo, data, algorithm="push_flow_incremental", max_rounds=50
        )
        assert result.backend == "object"


class TestResults:
    @pytest.mark.parametrize("backend", ["object", "vector"])
    def test_converges_to_average(self, topo, data, backend):
        result = run_reduction(
            topo, data, algorithm="push_cancel_flow", backend=backend
        )
        assert result.converged
        assert result.max_error <= 1e-15
        assert result.best_error <= result.max_error
        assert result.rounds > 0
        assert result.estimates.shape == (topo.n,)
        assert np.allclose(result.estimates, result.truth, rtol=1e-12)

    def test_sum_aggregate(self, topo, data):
        result = run_reduction(
            topo, data, kind=AggregateKind.SUM, algorithm="push_sum"
        )
        assert result.truth == pytest.approx(float(np.sum(data)), rel=1e-12)
        assert result.converged

    def test_estimate_of(self, topo, data):
        result = run_reduction(topo, data, algorithm="push_sum")
        assert result.estimate_of(3) == pytest.approx(result.truth, rel=1e-10)

    def test_vector_data(self, topo):
        data = [np.array([1.0, 2.0]) * (i + 1) for i in range(topo.n)]
        result = run_reduction(topo, data, algorithm="push_cancel_flow")
        assert result.estimates.shape == (topo.n, 2)

    def test_stall_detection_terminates_pf(self, topo, data):
        result = run_reduction(
            topo,
            data,
            algorithm="push_flow",
            backend="vector",
            stall_rounds=40,
            max_rounds=100000,
        )
        # PF plateaus above 1e-15; the stall detector must stop the run
        # long before the absurd cap.
        assert result.rounds < 5000

    def test_error_scale_override(self, topo):
        # A reduction whose truth is tiny relative to the data: with the
        # default normalization it cannot converge; with a data-scale
        # normalization it can.
        rng = np.random.default_rng(3)
        data = rng.uniform(-1, 1, size=topo.n)
        data -= data.mean()  # true average ~ 0
        strict = run_reduction(
            topo, data, algorithm="push_cancel_flow", max_rounds=400
        )
        scaled = run_reduction(
            topo,
            data,
            algorithm="push_cancel_flow",
            max_rounds=400,
            error_scale=1.0,
        )
        assert scaled.converged
        assert scaled.max_error <= 1e-15

    def test_fault_plan_runs_on_object_backend(self, topo, data):
        plan = single_link_failure(10, 0, 1)
        result = run_reduction(
            topo,
            data,
            algorithm="push_cancel_flow",
            fault_plan=plan,
            max_rounds=300,
        )
        assert result.backend == "object"
        assert result.converged

    def test_determinism(self, topo, data):
        a = run_reduction(topo, data, schedule_seed=5)
        b = run_reduction(topo, data, schedule_seed=5)
        np.testing.assert_array_equal(a.estimates, b.estimates)
        assert a.rounds == b.rounds
