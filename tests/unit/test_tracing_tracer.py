"""Tests for the causal tracer and the Chrome trace-event export.

The tracer's contract is the happens-before DAG: a delivery is parented to
the matching send *and* to the receiver's previous state-touching event,
link handlings join both endpoints' histories, and provenance walks the
DAG back through exactly the message chain that produced an estimate.
"""

import json

import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.algorithms.registry import instantiate
from repro.faults.events import FaultPlan, LinkFailure
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import FixedSchedule
from repro.telemetry.sampling import RoundSampler
from repro.topology import ring
from repro.tracing import (
    CausalTracer,
    export_chrome_trace,
    load_events,
    validate_chrome_trace,
)
from tests.conftest import build_engine
from tests.unit.test_observer_hooks import DropFirstMessage


def traced_ring_run(*, fault_plan=None, message_fault=None, rounds=2):
    """ring(3) with a scripted schedule: node 0 sends to 1 every round."""
    topo = ring(3)
    initial = initial_mass_pairs(AggregateKind.AVERAGE, [3.0, 0.0, 0.0])
    algs = instantiate("push_flow", topo, initial)
    tracer = CausalTracer()
    engine = SynchronousEngine(
        topo,
        algs,
        FixedSchedule([[1, None, None]] * rounds),
        fault_plan=fault_plan,
        message_fault=message_fault,
        observers=[tracer],
    )
    engine.run(rounds)
    return tracer


def events_of_kind(tracer, kind):
    return [e for e in tracer.events.values() if e.kind == kind]


class TestCausalDag:
    def test_send_parented_to_sender_frontier(self):
        tracer = traced_ring_run()
        sends = events_of_kind(tracer, "send")
        assert len(sends) == 2
        run_start = events_of_kind(tracer, "run_start")[0]
        # First send descends from run_start; the second from the first
        # (the virtual send mutates sender state, advancing the frontier).
        assert sends[0].parents == (run_start.eid,)
        assert sends[1].parents == (sends[0].eid,)

    def test_delivery_names_and_parents_its_send(self):
        tracer = traced_ring_run()
        sends = events_of_kind(tracer, "send")
        delivers = events_of_kind(tracer, "deliver")
        assert len(delivers) == 2
        for send, deliver in zip(sends, delivers):
            assert deliver.node == 1
            assert deliver.detail["sender"] == 0
            assert deliver.detail["send_eid"] == send.eid
            assert send.eid in deliver.parents
        # The second delivery is also parented to the receiver's previous
        # frontier event — the first delivery.
        assert delivers[0].eid in delivers[1].parents

    def test_injector_drop_parented_to_send(self):
        tracer = traced_ring_run(message_fault=DropFirstMessage())
        drops = events_of_kind(tracer, "drop")
        assert len(drops) == 1
        assert drops[0].detail["reason"] == "injector"
        send = events_of_kind(tracer, "send")[0]
        assert drops[0].parents == (send.eid,)
        # The dropped message produced no delivery in round 0.
        delivers = events_of_kind(tracer, "deliver")
        assert [d.round for d in delivers] == [1]

    def test_link_handled_joins_fault_and_both_endpoints(self):
        plan = FaultPlan(
            link_failures=[LinkFailure(round=0, u=1, v=2, detection_delay=1)]
        )
        tracer = traced_ring_run(fault_plan=plan)
        fault = events_of_kind(tracer, "fault")[0]
        assert fault.detail == {"kind": "link_failure", "detail": "link(1,2)"}
        handled = events_of_kind(tracer, "link_handled")[0]
        assert handled.detail == {"u": 1, "v": 2}
        assert fault.eid in handled.parents
        # Handling mutates both endpoints, so it becomes their frontier.
        assert tracer.frontier(1).eid == handled.eid
        assert tracer.frontier(2).eid == handled.eid

    def test_provenance_walks_back_through_the_message_chain(self):
        tracer = traced_ring_run()
        history = tracer.provenance(1)
        kinds = [e.kind for e in history]
        # Newest first: second delivery, second send, first delivery, ...
        assert kinds[0] == "deliver"
        assert kinds.count("send") == 2
        assert kinds.count("deliver") == 2
        assert kinds[-1] == "run_start"
        assert all(a.eid > b.eid for a, b in zip(history, history[1:]))

    def test_provenance_of_untouched_node_is_empty(self):
        tracer = traced_ring_run()
        assert tracer.provenance(2) == []

    def test_pruning_bounds_memory_and_keeps_walks_safe(self):
        topo = ring(4)
        tracer = CausalTracer(max_events=10)
        engine, _ = build_engine(
            topo, "push_flow", [1.0] * 4, observers=[tracer]
        )
        engine.run(20)
        assert len(tracer.events) == 10
        assert tracer.pruned_events > 0
        # Walks stop at pruned parents instead of crashing.
        for node in range(4):
            tracer.provenance(node)

    def test_round_markers_respect_the_sampler(self):
        topo = ring(4)
        tracer = CausalTracer(sampler=RoundSampler(every=5))
        engine, _ = build_engine(
            topo, "push_sum", [1.0] * 4, observers=[tracer]
        )
        engine.run(12)
        rounds = [e.round for e in events_of_kind(tracer, "round")]
        assert rounds == [0, 5, 10]
        # Unsampled rounds also skip per-message detail.
        send_rounds = {e.round for e in events_of_kind(tracer, "send")}
        assert send_rounds == {0, 5, 10}

    def test_record_alert_parents_to_node_frontier(self):
        tracer = traced_ring_run()
        frontier = tracer.frontier(1)
        eid = tracer.record_alert(5, "flow_blowup", {"ratio": 20.0}, node=1)
        alert = tracer.events[eid]
        assert alert.detail["detector"] == "flow_blowup"
        assert alert.parents == (frontier.eid,)

    def test_max_events_validated(self):
        with pytest.raises(ValueError):
            CausalTracer(max_events=0)


class TestDumpAndReload:
    def test_jsonl_round_trips(self, tmp_path):
        tracer = traced_ring_run()
        path = tmp_path / "events.jsonl"
        count = tracer.dump_jsonl(path)
        loaded = load_events(path)
        assert len(loaded) == count == len(tracer.events)
        by_eid = {e.eid: e for e in loaded}
        for eid, event in tracer.events.items():
            assert by_eid[eid].kind == event.kind
            assert by_eid[eid].parents == event.parents


class TestChromeExport:
    def test_exported_trace_validates(self, tmp_path):
        plan = FaultPlan(
            link_failures=[LinkFailure(round=0, u=1, v=2, detection_delay=1)]
        )
        tracer = traced_ring_run(fault_plan=plan, rounds=3)
        path = export_chrome_trace(tracer.events.values(), tmp_path / "t.json")
        counts = validate_chrome_trace(path)
        # One slice per send and per delivery.
        sends = events_of_kind(tracer, "send")
        delivers = events_of_kind(tracer, "deliver")
        assert counts["X"] == len(sends) + len(delivers)
        # One flow start per send; one finish per delivery whose send is
        # known — never more finishes than starts (strict pairing).
        assert counts["s"] == len(sends)
        assert counts["f"] == len(delivers)

    def test_flow_arrows_bind_to_the_matched_send(self, tmp_path):
        tracer = traced_ring_run()
        path = export_chrome_trace(tracer.events.values(), tmp_path / "t.json")
        payload = json.loads(path.read_text())
        send_eids = {e.eid for e in events_of_kind(tracer, "send")}
        finishes = [
            e for e in payload["traceEvents"] if e.get("ph") == "f"
        ]
        assert finishes
        assert all(e["id"] in send_eids for e in finishes)

    def test_unmatched_flow_finish_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "traceEvents": [
                {"name": "m", "ph": "f", "id": 7, "ts": 0, "pid": 0, "tid": 0}
            ]
        }))
        with pytest.raises(ValueError, match="no matching start"):
            validate_chrome_trace(path)

    def test_non_strict_json_rejected(self, tmp_path):
        path = tmp_path / "nan.json"
        path.write_text(
            '{"traceEvents": [{"name": "r", "ph": "i", "ts": 0, '
            '"pid": 0, "tid": 0, "s": "g", "args": {"x": NaN}}]}'
        )
        with pytest.raises(ValueError, match="non-strict"):
            validate_chrome_trace(path)

    def test_missing_envelope_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="envelope"):
            validate_chrome_trace(path)
