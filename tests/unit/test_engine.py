"""Unit tests for the synchronous engine."""

import numpy as np
import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.algorithms.registry import instantiate
from repro.exceptions import ConfigurationError
from repro.faults.events import FaultPlan, LinkFailure, NodeFailure
from repro.faults.message_loss import IidMessageLoss
from repro.simulation.engine import SynchronousEngine
from repro.simulation.observers import Observer, RoundCounter
from repro.simulation.schedule import FixedSchedule, UniformGossipSchedule
from repro.topology import hypercube, ring
from tests.conftest import build_engine


class TestConstruction:
    def test_wrong_algorithm_count(self):
        topo = ring(4)
        initial = initial_mass_pairs(AggregateKind.AVERAGE, [1.0] * 4)
        algs = instantiate("push_sum", topo, initial)
        with pytest.raises(ConfigurationError):
            SynchronousEngine(topo, algs[:-1], UniformGossipSchedule(4, 0))

    def test_wrong_node_ids(self):
        topo = ring(4)
        initial = initial_mass_pairs(AggregateKind.AVERAGE, [1.0] * 4)
        algs = instantiate("push_sum", topo, initial)
        algs[0], algs[1] = algs[1], algs[0]
        with pytest.raises(ConfigurationError):
            SynchronousEngine(topo, algs, UniformGossipSchedule(4, 0))

    def test_fault_plan_validated_against_topology(self):
        topo = ring(4)
        initial = initial_mass_pairs(AggregateKind.AVERAGE, [1.0] * 4)
        algs = instantiate("push_sum", topo, initial)
        with pytest.raises(ConfigurationError):
            SynchronousEngine(
                topo,
                algs,
                UniformGossipSchedule(4, 0),
                fault_plan=FaultPlan(link_failures=[LinkFailure(0, 0, 2)]),
            )


class TestRoundSemantics:
    def test_every_live_node_sends_each_round(self):
        topo = ring(6)
        engine, _ = build_engine(topo, "push_sum", [1.0] * 6)
        engine.run(10)
        assert engine.messages_sent == 60
        assert engine.messages_delivered == 60
        assert engine.round == 10

    def test_scripted_round_delivery(self):
        # Node 0 sends its half to node 1; others silent.
        topo = ring(4)
        data = [4.0, 0.0, 0.0, 0.0]
        initial = initial_mass_pairs(AggregateKind.AVERAGE, data)
        algs = instantiate("push_sum", topo, initial)
        engine = SynchronousEngine(
            topo, algs, FixedSchedule([[1, None, None, None]])
        )
        engine.step()
        assert algs[0].estimate_pair().value == 2.0
        assert algs[1].estimate_pair().value == 2.0

    def test_run_zero_rounds(self):
        topo = ring(4)
        engine, _ = build_engine(topo, "push_sum", [1.0] * 4)
        assert engine.run(0) == 0

    def test_negative_rounds_rejected(self):
        topo = ring(4)
        engine, _ = build_engine(topo, "push_sum", [1.0] * 4)
        with pytest.raises(ConfigurationError):
            engine.run(-1)

    def test_stop_condition(self):
        topo = hypercube(3)
        engine, _ = build_engine(topo, "push_sum", list(range(8)))
        executed = engine.run(100, stop_when=lambda eng, r: r >= 4)
        assert executed == 5

    def test_determinism(self):
        topo = hypercube(4)
        data = list(np.random.default_rng(0).uniform(size=topo.n))
        e1, a1 = build_engine(topo, "push_flow", data, schedule_seed=3)
        e2, a2 = build_engine(topo, "push_flow", data, schedule_seed=3)
        e1.run(50)
        e2.run(50)
        for x, y in zip(a1, a2):
            assert x.estimate() == y.estimate()


class TestFaultsInEngine:
    def test_message_loss_reduces_deliveries(self):
        topo = ring(6)
        engine, _ = build_engine(
            topo,
            "push_flow",
            [1.0] * 6,
            message_fault=IidMessageLoss(0.5, seed=3),
        )
        engine.run(50)
        assert engine.messages_delivered < engine.messages_sent

    def test_link_failure_blocks_edge_and_notifies(self):
        topo = ring(4)
        plan = FaultPlan(link_failures=[LinkFailure(round=2, u=0, v=1)])
        engine, algs = build_engine(topo, "push_flow", [1.0] * 4, fault_plan=plan)
        engine.run(10)
        assert 1 not in algs[0].neighbors
        assert 0 not in algs[1].neighbors

    def test_link_failure_detection_delay(self):
        topo = ring(4)
        plan = FaultPlan(
            link_failures=[LinkFailure(round=2, u=0, v=1, detection_delay=5)]
        )
        engine, algs = build_engine(topo, "push_flow", [1.0] * 4, fault_plan=plan)
        engine.run(4)
        # Physically dead but not yet handled: neighbor still listed.
        assert 1 in algs[0].neighbors
        engine.run(6)
        assert 1 not in algs[0].neighbors

    def test_node_failure_silences_node(self):
        topo = ring(5)
        plan = FaultPlan(node_failures=[NodeFailure(round=3, node=2)])
        engine, algs = build_engine(topo, "push_flow", [1.0] * 5, fault_plan=plan)
        engine.run(10)
        assert 2 in engine.dead_nodes
        assert engine.live_nodes() == [0, 1, 3, 4]
        # Survivors excluded the dead node's links.
        assert 2 not in algs[1].neighbors
        assert 2 not in algs[3].neighbors
        # Dead node's estimate is excluded from the global view.
        assert len(engine.estimates()) == 4

    def test_messages_on_dead_link_are_swallowed(self):
        topo = ring(4)
        plan = FaultPlan(
            link_failures=[LinkFailure(round=0, u=0, v=1, detection_delay=100)]
        )
        # Force node 0 to always target node 1 (silent otherwise).
        script = [[1, None, None, None]] * 10
        initial = initial_mass_pairs(AggregateKind.AVERAGE, [1.0] * 4)
        algs = instantiate("push_flow", topo, initial)
        engine = SynchronousEngine(
            topo, algs, FixedSchedule(script), fault_plan=plan
        )
        engine.run(10)
        assert engine.messages_sent == 10
        assert engine.messages_delivered == 0


class TestObservers:
    def test_observer_hooks_fire(self):
        events = []

        class Recorder(Observer):
            def on_run_start(self, engine):
                events.append("start")

            def on_round_end(self, engine, round_index):
                events.append(("round", round_index))

            def on_link_handled(self, engine, round_index, u, v):
                events.append(("link", u, v))

            def on_run_end(self, engine, rounds):
                events.append(("end", rounds))

        topo = ring(4)
        plan = FaultPlan(link_failures=[LinkFailure(round=1, u=0, v=1)])
        engine, _ = build_engine(
            topo, "push_flow", [1.0] * 4, fault_plan=plan
        )
        engine._observer._observers.append(Recorder())
        engine.run(3)
        assert events[0] == "start"
        assert ("link", 0, 1) in events
        assert events[-1] == ("end", 3)

    def test_round_counter(self):
        topo = ring(4)
        counter = RoundCounter()
        engine, _ = build_engine(topo, "push_sum", [1.0] * 4, observers=[counter])
        engine.run(7)
        assert counter.rounds == 7
        assert sum(counter.sent_per_round) == engine.messages_sent
