"""Additional edge-case coverage for the synchronous engine."""

import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.algorithms.registry import instantiate
from repro.exceptions import SimulationError
from repro.faults.events import FaultPlan, NodeFailure
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import FixedSchedule, UniformGossipSchedule
from repro.topology import bus, star
from repro.topology.base import Topology


def build(topo, algorithm, data, schedule=None, **kwargs):
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    algs = instantiate(algorithm, topo, initial)
    engine = SynchronousEngine(
        topo,
        algs,
        schedule or UniformGossipSchedule(topo.n, 1),
        **kwargs,
    )
    return engine, algs


class TestEngineEdgeCases:
    def test_hub_failure_orphans_leaves_without_crash(self):
        # Killing the star's hub isolates every leaf; the engine must keep
        # running (leaves have empty live neighborhoods and just go silent).
        topo = star(6)
        plan = FaultPlan(node_failures=[NodeFailure(round=5, node=0)])
        engine, algs = build(topo, "push_cancel_flow", [1.0] * 6, fault_plan=plan)
        engine.run(30)
        assert engine.live_nodes() == [1, 2, 3, 4, 5]
        for i in range(1, 6):
            assert algs[i].neighbors == ()
        # Silent rounds: no sends after all links vanished.
        sent_before = engine.messages_sent
        engine.step()
        assert engine.messages_sent == sent_before

    def test_all_silent_schedule(self):
        topo = bus(4)
        schedule = FixedSchedule([[None] * 4] * 5)
        engine, algs = build(topo, "push_sum", [1.0, 2.0, 3.0, 4.0], schedule)
        engine.run(5)
        assert engine.messages_sent == 0
        # State untouched.
        assert [a.estimate() for a in algs] == [1.0, 2.0, 3.0, 4.0]

    def test_schedule_returning_non_neighbor_raises(self):
        class EvilSchedule:
            def choose(self, node, live, round_index):
                return 3 if node == 0 else None

            def reset(self):
                pass

        topo = bus(4)  # 3 is NOT a neighbor of 0
        initial = initial_mass_pairs(AggregateKind.AVERAGE, [1.0] * 4)
        algs = instantiate("push_sum", topo, initial)
        engine = SynchronousEngine(topo, algs, EvilSchedule())
        with pytest.raises(SimulationError):
            engine.step()

    def test_single_node_topology_runs(self):
        topo = Topology(1, [])
        engine, algs = build(topo, "push_sum", [5.0])
        engine.run(3)
        assert algs[0].estimate() == 5.0
        assert engine.messages_sent == 0

    def test_run_resumes_across_calls(self):
        topo = bus(4)
        engine, _ = build(topo, "push_sum", [1.0] * 4)
        engine.run(5)
        engine.run(5)
        assert engine.round == 10
