"""Tests for the online anomaly detectors against real reproduction runs.

Each detector is exercised on the exact scenario its paper figure
describes — and, just as importantly, on the matched healthy run where it
must stay silent. The PF-fires / PCF-silent contrasts are the detectors'
whole value: an alert that also fires on the fixed algorithm would be
noise.
"""

import numpy as np
import pytest

from repro.experiments.workloads import bus_case_study_data, uniform_data
from repro.faults.events import FaultPlan, LinkFailure
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sampling import RoundSampler
from repro.topology import hypercube, standard
from repro.tracing import (
    CausalTracer,
    FlowBlowupDetector,
    PCFCancellationStallDetector,
    RestartRegressionDetector,
    default_detectors,
)
from repro.vectorized.parity import vector_engine_for
from tests.conftest import build_engine


def run_bus_case_study(algorithm, detector, *, n=32, rounds=500, seed=7):
    """The Sec. II-B cancellation-disaster workload on a bus, vectorized."""
    topo = standard.bus(n)
    data = bus_case_study_data(n)
    engine = vector_engine_for(algorithm)(
        topo, data, np.ones(n), seed=seed, observers=[detector]
    )
    engine.run(rounds)
    return engine


class TestFlowBlowup:
    """Figs. 2–3: PF's flows grow ~n while estimates stay O(1)."""

    def test_fires_on_pf_bus_case_study(self):
        det = FlowBlowupDetector(sampler=RoundSampler(every=8))
        run_bus_case_study("push_flow", det)
        assert det.fired
        alert = det.alerts[0]
        assert alert["detector"] == "flow_blowup"
        assert alert["flow_weight_ratio"] >= det.ratio_threshold
        assert alert["sustained_samples"] == det.patience

    def test_silent_on_equivalent_pcf_run(self):
        # Same topology, data, seed and rounds — only the algorithm
        # differs. PCF keeps flows at the estimate scale.
        det = FlowBlowupDetector(sampler=RoundSampler(every=8))
        run_bus_case_study("push_cancel_flow_hardened", det)
        assert not det.fired

    def test_alert_once_per_excursion(self):
        # PF's ratio stays above threshold for the whole run; the alert
        # must not repeat every sample.
        det = FlowBlowupDetector(sampler=RoundSampler(every=8))
        run_bus_case_study("push_flow", det)
        assert len(det.alerts) == 1

    def test_silent_on_non_flow_algorithm(self):
        det = FlowBlowupDetector()
        run_bus_case_study("push_sum", det, rounds=100)
        assert not det.fired


class TestRestartRegression:
    """Fig. 4: PF re-pays its convergence after a handled link failure."""

    @staticmethod
    def run_with_link_failure(algorithm, detector):
        topo = hypercube(4)  # 16 nodes
        plan = FaultPlan(
            link_failures=[LinkFailure(round=40, u=0, v=1, detection_delay=1)]
        )
        engine, _ = build_engine(
            topo, algorithm, uniform_data(16, seed=0),
            fault_plan=plan, observers=[detector],
        )
        engine.run(100)
        return engine

    def test_fires_on_pf(self):
        det = RestartRegressionDetector(sampler=RoundSampler(every=4))
        self.run_with_link_failure("push_flow", det)
        assert det.fired
        alert = det.alerts[0]
        assert alert["event_round"] == 41
        assert alert["regression"] > det.regression_factor
        assert alert["post_spread"] > alert["pre_spread"]

    def test_silent_on_pcf_same_failure(self):
        det = RestartRegressionDetector(sampler=RoundSampler(every=4))
        self.run_with_link_failure("push_cancel_flow", det)
        assert not det.fired

    def test_silent_without_a_failure(self):
        det = RestartRegressionDetector(sampler=RoundSampler(every=4))
        engine, _ = build_engine(
            hypercube(4), "push_flow", uniform_data(16, seed=0),
            observers=[det],
        )
        engine.run(100)
        assert not det.fired


class TestPCFCancellationStall:
    """Finding F1: crossing-deadlocked edges drain the weight mass."""

    def test_fires_on_plain_pcf_bus(self):
        det = PCFCancellationStallDetector(sampler=RoundSampler(every=8))
        engine = run_bus_case_study(
            "push_cancel_flow", det, n=64, rounds=1200
        )
        assert det.fired
        alert = det.alerts[0]
        assert alert["weight_mass"] < 0.5 * alert["baseline"]
        # The drain is real: live mass is far below the healthy ~n.
        _, weights = engine.estimate_pairs()
        assert float(weights.sum()) < 40.0

    def test_silent_on_hardened_pcf_same_setup(self):
        det = PCFCancellationStallDetector(sampler=RoundSampler(every=8))
        engine = run_bus_case_study(
            "push_cancel_flow_hardened", det, n=64, rounds=1200
        )
        assert not det.fired
        _, weights = engine.estimate_pairs()
        assert float(weights.sum()) == pytest.approx(78.0, rel=0.2)

    def test_silent_on_non_pcf_algorithm(self):
        det = PCFCancellationStallDetector()
        run_bus_case_study("push_flow", det, rounds=100)
        assert not det.fired


class TestAlertPlumbing:
    def test_alerts_reach_registry_and_tracer(self):
        registry = MetricsRegistry()
        tracer = CausalTracer()
        det = FlowBlowupDetector(
            sampler=RoundSampler(every=8), registry=registry, tracer=tracer
        )
        run_bus_case_study("push_flow", det)
        assert det.fired
        counter = registry.counter(
            "repro_anomaly_alerts_total", "Anomaly-detector alerts"
        )
        assert counter.value(detector="flow_blowup") == len(det.alerts)
        alerts = [e for e in tracer.events.values() if e.kind == "alert"]
        assert len(alerts) == len(det.alerts)
        assert alerts[0].detail["detector"] == "flow_blowup"

    def test_attach_tracer_after_construction(self):
        tracer = CausalTracer()
        det = FlowBlowupDetector(sampler=RoundSampler(every=8))
        det.attach_tracer(tracer)
        run_bus_case_study("push_flow", det)
        assert any(e.kind == "alert" for e in tracer.events.values())

    def test_default_detectors_cover_all_signatures(self):
        sampler = RoundSampler(every=8)
        detectors = default_detectors(sampler=sampler)
        assert {d.name for d in detectors} == {
            "flow_blowup",
            "restart_regression",
            "pcf_stall",
            "partition_heal",
        }

    def test_detectors_never_force_the_detail_path(self):
        # Detectors read state at round boundaries only; they must not
        # push engines onto the slow per-message path.
        for det in default_detectors():
            assert det.wants_detail(0) is False
