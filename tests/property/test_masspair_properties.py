"""Property-based tests for MassPair arithmetic (hypothesis)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.state import MassPair

# Exclude the deep-underflow range: halving a value whose half is
# subnormal can lose the lowest mantissa bit — an IEEE-754 corner far
# below any quantity the protocols manipulate.
finite = st.one_of(
    st.just(0.0),
    st.floats(allow_nan=False, allow_infinity=False, min_value=1e-200, max_value=1e12),
    st.floats(allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=-1e-200),
)


def pairs():
    return st.builds(MassPair, finite, finite)


def vector_pairs(dim=3):
    return st.builds(
        lambda vals, w: MassPair(np.array(vals), w),
        st.lists(finite, min_size=dim, max_size=dim),
        finite,
    )


class TestAlgebraicProperties:
    @given(pairs(), pairs())
    def test_addition_commutes(self, a, b):
        assert (a + b).exactly_equals(b + a)

    @given(pairs())
    def test_self_subtraction_is_zero(self, a):
        assert (a - a).is_zero()

    @given(pairs())
    def test_double_negation(self, a):
        assert (-(-a)).exactly_equals(a)

    @given(pairs())
    def test_half_plus_half_recovers(self, a):
        half = a.half()
        assert (half + half).exactly_equals(a)

    @given(pairs(), pairs())
    def test_sub_is_add_neg(self, a, b):
        assert (a - b).exactly_equals(a + (-b))

    @given(pairs())
    def test_zero_is_identity(self, a):
        assert (a + a.zero_like()).exactly_equals(a)

    @given(vector_pairs(), vector_pairs())
    def test_vector_addition_commutes(self, a, b):
        assert (a + b).exactly_equals(b + a)

    @given(vector_pairs())
    def test_vector_half_exact(self, a):
        assert (a.half() + a.half()).exactly_equals(a)

    @given(pairs())
    def test_magnitude_nonnegative(self, a):
        assert a.magnitude() >= 0.0

    @given(pairs())
    def test_neg_preserves_magnitude(self, a):
        assert (-a).magnitude() == a.magnitude()

    @given(pairs())
    def test_copy_equal_and_independent(self, a):
        clone = a.copy()
        assert clone.exactly_equals(a)
        assert clone is not a

    @given(pairs())
    def test_exactly_equals_reflexive(self, a):
        assert a.exactly_equals(a)

    @given(pairs(), pairs())
    def test_exactly_equals_symmetric(self, a, b):
        assert a.exactly_equals(b) == b.exactly_equals(a)
