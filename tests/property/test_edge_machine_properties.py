"""Property-based tests of the PCF edge state machine under adversarial
interleavings: random send/deliver/drop schedules on one edge must never
break the era-skew bound, produce non-finite state, or lose mass
irrecoverably (a settling phase restores conservation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.flow_edge import PCFEdgeState
from repro.algorithms.state import MassPair

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-10.0, max_value=10.0
)

# Steps: (actor, action, amount) where action 0=add-to-active, 1=send
# (delivered), 2=send (lost).
steps = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=2),
        finite,
    ),
    min_size=1,
    max_size=80,
)


def run_script(script):
    a = PCFEdgeState(MassPair(0.0, 0.0))
    b = PCFEdgeState(MassPair(0.0, 0.0))
    # Track the efficient-phi of each side so estimate-consistency can be
    # asserted: phi(t) is exactly the sum of all deltas applied.
    phi_a = MassPair(0.0, 0.0)
    phi_b = MassPair(0.0, 0.0)
    for actor_is_a, action, amount in script:
        src, dst = (a, b) if actor_is_a else (b, a)
        if action == 0:
            half = MassPair(amount, 1.0).half()
            src.add_to_active(half)
            if actor_is_a:
                phi_a = phi_a + half
            else:
                phi_b = phi_b + half
        else:
            payload = src.payload()
            if action == 1:
                effect = dst.receive(payload)
                if actor_is_a:
                    phi_b = phi_b + effect.phi_delta_efficient
                else:
                    phi_a = phi_a + effect.phi_delta_efficient
    return a, b, phi_a, phi_b


class TestEdgeMachineInvariants:
    @given(steps)
    @settings(max_examples=80, deadline=None)
    def test_era_skew_bounded(self, script):
        a, b, _, _ = run_script(script)
        assert abs(a.era - b.era) <= 1

    @given(steps)
    @settings(max_examples=80, deadline=None)
    def test_state_stays_finite(self, script):
        a, b, phi_a, phi_b = run_script(script)
        for edge in (a, b):
            assert edge.flow(0).is_finite()
            assert edge.flow(1).is_finite()
        assert phi_a.is_finite()
        assert phi_b.is_finite()

    @given(steps)
    @settings(max_examples=60, deadline=None)
    def test_settling_restores_conservation(self, script):
        a, b, phi_a, phi_b = run_script(script)
        # Settle: alternating successful deliveries until both slots are
        # exactly conserved (bounded — liveness check). Role alignment is
        # NOT required: with all-zero flows the trivial cancel/swap cycle
        # can leave the roles permanently anti-phased under a strictly
        # alternating schedule, which is harmless (every slot pair is
        # exactly conserved throughout).
        settled = False
        for _ in range(12):
            eff = b.receive(a.payload())
            phi_b = phi_b + eff.phi_delta_efficient
            eff = a.receive(b.payload())
            phi_a = phi_a + eff.phi_delta_efficient
            if all(a.flow(s).exactly_equals(-b.flow(s)) for s in (0, 1)):
                settled = True
                break
        assert settled, "edge never resynchronized under clean exchanges"
        # Conservation of the whole system: the two phis' sum equals the
        # net mass both sides believe was moved — and must cancel with the
        # (conserved) flows, i.e. total estimate shift is zero.
        total_shift = (phi_a + phi_b).value
        assert total_shift == pytest.approx(0.0, abs=1e-9)

    @given(steps)
    @settings(max_examples=60, deadline=None)
    def test_phi_tracks_flows_plus_frozen(self, script):
        # In the efficient variant phi always equals (sum of current
        # flows) + (sum of frozen values); equivalently phi minus the live
        # flows is exactly the frozen residue, which changes only at
        # cancel/swap events. We verify the weaker but fully checkable
        # invariant: replaying phi deltas reproduces phi (already done by
        # construction) AND live flows never exceed phi-consistent bounds.
        a, b, phi_a, phi_b = run_script(script)
        for edge, phi in ((a, phi_a), (b, phi_b)):
            live = edge.total_flow()
            residue = phi - live
            assert residue.is_finite()
