"""Property-based conservation invariants under random protocol drives.

The paper's fault-tolerance argument rests on two invariants:

- push-sum conserves mass exactly as long as every message is delivered;
- the flow algorithms conserve mass whenever flow conservation holds, and
  re-establish flow conservation after arbitrary loss at the next
  successful one-directional exchange.

Hypothesis drives random interleavings (including losses) and checks the
invariants after a "settling" exchange that restores conservation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.push_cancel_flow import PushCancelFlow
from repro.algorithms.push_flow import PushFlow
from repro.algorithms.push_sum import PushSum
from repro.algorithms.state import MassPair

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-100.0, max_value=100.0
)

# A script is a list of (direction, delivered) steps on a 2-node system.
scripts = st.lists(
    st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=60
)


def total_value(a, b):
    return a.estimate_pair().value + b.estimate_pair().value


def drive(a, b, script):
    for a_to_b, delivered in script:
        src, dst = (a, b) if a_to_b else (b, a)
        payload = src.make_message(dst.node_id)
        if delivered:
            dst.on_receive(src.node_id, payload)


class TestPushSumConservation:
    @given(finite, finite, scripts)
    @settings(max_examples=60, deadline=None)
    def test_mass_conserved_without_loss(self, va, vb, script):
        a = PushSum(0, [1], MassPair(va, 1.0))
        b = PushSum(1, [0], MassPair(vb, 1.0))
        drive(a, b, [(d, True) for d, _ in script])
        assert total_value(a, b) == pytest.approx(va + vb, rel=1e-9, abs=1e-9)

    @given(finite, scripts)
    @settings(max_examples=60, deadline=None)
    def test_any_loss_removes_mass_permanently(self, va, script):
        if not any(not delivered for _, delivered in script):
            return  # only loss-bearing scripts are interesting
        a = PushSum(0, [1], MassPair(va, 1.0))
        b = PushSum(1, [0], MassPair(0.0, 1.0))
        drive(a, b, script)
        # Weight mass strictly decreased (weights are positive, every
        # lost message removes a positive weight amount).
        total_weight = a.estimate_pair().weight + b.estimate_pair().weight
        assert total_weight < 2.0


class TestFlowConservation:
    @given(finite, finite, scripts)
    @settings(max_examples=60, deadline=None)
    def test_pf_mass_restored_after_settling(self, va, vb, script):
        a = PushFlow(0, [1], MassPair(va, 1.0))
        b = PushFlow(1, [0], MassPair(vb, 1.0))
        drive(a, b, script)
        # Settle: one successful exchange re-establishes flow conservation
        # (f_ab = -f_ba) and with it exact mass conservation.
        b.on_receive(0, a.make_message(1))
        assert b.local_flows()[0].exactly_equals(-a.local_flows()[1])
        assert total_value(a, b) == pytest.approx(va + vb, rel=1e-9, abs=1e-9)

    @given(finite, finite, scripts)
    @settings(max_examples=60, deadline=None)
    def test_pf_flow_conservation_implies_mass_conservation(self, va, vb, script):
        a = PushFlow(0, [1], MassPair(va, 1.0))
        b = PushFlow(1, [0], MassPair(vb, 1.0))
        drive(a, b, script)
        b.on_receive(0, a.make_message(1))
        flow_ab = a.local_flows()[1]
        flow_ba = b.local_flows()[0]
        if flow_ab.exactly_equals(-flow_ba):
            total = a.estimate_pair() + b.estimate_pair()
            assert total.value == pytest.approx(va + vb, rel=1e-9, abs=1e-9)
            assert total.weight == pytest.approx(2.0, rel=1e-9)

    @given(finite, finite, scripts)
    @settings(max_examples=40, deadline=None)
    def test_pcf_era_skew_bounded(self, va, vb, script):
        a = PushCancelFlow(0, [1], MassPair(va, 1.0))
        b = PushCancelFlow(1, [0], MassPair(vb, 1.0))
        drive(a, b, script)
        skew = abs(a.edge_state(1).era - b.edge_state(0).era)
        assert skew <= 1

    @given(finite, finite, scripts)
    @settings(max_examples=40, deadline=None)
    def test_pcf_mass_restored_after_settling(self, va, vb, script):
        a = PushCancelFlow(0, [1], MassPair(va, 1.0))
        b = PushCancelFlow(1, [0], MassPair(vb, 1.0))
        drive(a, b, script)
        # Settle with several alternating successful exchanges (the
        # handshake may need a few messages to resynchronize eras).
        for _ in range(6):
            b.on_receive(0, a.make_message(1))
            a.on_receive(1, b.make_message(0))
        total = a.estimate_pair() + b.estimate_pair()
        assert total.value == pytest.approx(va + vb, rel=1e-9, abs=1e-9)
        assert total.weight == pytest.approx(2.0, rel=1e-9, abs=1e-9)

    @given(finite, finite, scripts)
    @settings(max_examples=40, deadline=None)
    def test_pcf_estimates_stay_finite(self, va, vb, script):
        a = PushCancelFlow(0, [1], MassPair(va, 1.0))
        b = PushCancelFlow(1, [0], MassPair(vb, 1.0))
        drive(a, b, script)
        assert a.estimate_pair().is_finite()
        assert b.estimate_pair().is_finite()
