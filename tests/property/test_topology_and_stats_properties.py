"""Property-based tests for topologies, stats and bit utilities."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import bus, complete, diameter, hypercube, ring, spectral_gap
from repro.topology.base import Topology
from repro.util.float_bits import flip_bit, ulp_distance
from repro.util.stats import RunningStats, median, percentile


class TestTopologyProperties:
    @given(st.integers(min_value=1, max_value=7))
    def test_hypercube_structure(self, dim):
        topo = hypercube(dim)
        assert topo.n == 2 ** dim
        assert topo.is_regular()
        assert topo.max_degree() == dim
        assert diameter(topo) == dim

    @given(st.integers(min_value=2, max_value=64))
    def test_bus_diameter(self, n):
        assert diameter(bus(n)) == n - 1

    @given(st.integers(min_value=3, max_value=40))
    def test_ring_diameter(self, n):
        assert diameter(ring(n)) == n // 2

    @given(st.integers(min_value=2, max_value=24))
    def test_complete_graph_edges(self, n):
        topo = complete(n)
        assert topo.num_edges == n * (n - 1) // 2
        assert diameter(topo) == 1

    @given(st.integers(min_value=3, max_value=24))
    def test_edge_removal_keeps_edge_count(self, n):
        topo = ring(n)
        smaller = topo.without_edge(0, 1)
        assert smaller.num_edges == topo.num_edges - 1

    @given(
        st.integers(min_value=4, max_value=16),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_connected_graph_invariants(self, n, seed):
        rng = np.random.default_rng(seed)
        # Random spanning tree + extra edges: always connected.
        edges = set()
        nodes = list(range(n))
        rng.shuffle(nodes)
        for i in range(1, n):
            j = nodes[int(rng.integers(0, i))]
            edges.add((min(nodes[i], j), max(nodes[i], j)))
        for _ in range(n):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.add((min(u, v), max(u, v)))
        topo = Topology(n, sorted(edges))
        # Handshake lemma.
        assert sum(topo.degrees()) == 2 * topo.num_edges
        # Neighbor symmetry.
        for i in topo.nodes():
            for j in topo.neighbors(i):
                assert i in topo.neighbors(j)
        # Connected graphs mix.
        assert spectral_gap(topo) > 0


class TestStatsProperties:
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=50))
    def test_median_between_min_and_max(self, values):
        m = median(values)
        assert min(values) <= m <= max(values)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_percentile_monotone_in_q(self, values, q):
        assert percentile(values, 0) <= percentile(values, q) <= percentile(
            values, 100
        )

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e6, max_value=1e6),
                    min_size=2, max_size=60))
    def test_running_stats_match_numpy(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(float(np.mean(values)), abs=1e-6)
        assert stats.variance == pytest.approx(
            float(np.var(values, ddof=1)), rel=1e-6, abs=1e-6
        )


class TestFloatBitsProperties:
    @given(st.floats(allow_nan=False), st.integers(min_value=0, max_value=63))
    def test_flip_involution(self, x, bit):
        result = flip_bit(flip_bit(x, bit), bit)
        assert result == x or (math.isnan(result) and math.isnan(x))

    @given(st.floats(allow_nan=False, allow_infinity=False,
                     min_value=-1e300, max_value=1e300))
    def test_ulp_distance_identity(self, x):
        assert ulp_distance(x, x) == 0

    @given(st.floats(allow_nan=False, allow_infinity=False,
                     min_value=-1e300, max_value=1e300))
    def test_ulp_distance_to_next(self, x):
        neighbor = float(np.nextafter(x, math.inf))
        if neighbor != x and not math.isinf(neighbor):
            assert ulp_distance(x, neighbor) == 1
