"""Property-based tests of the hardened PCF edge machine.

The hardened handshake's headline guarantee: under *any* interleaving of
sends, deliveries and losses — including stale/boundary deliveries the
Fig. 5 machine cannot survive — the edge (a) never deadlocks (clean
exchanges always resynchronize it), (b) keeps the follower's era at or one
behind the initiator's, and (c) conserves mass exactly after settling.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.flow_edge_hardened import HardenedEdgeState
from repro.algorithms.state import MassPair

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-10.0, max_value=10.0
)

# Steps: (actor_is_initiator, action, amount); action 0=add-to-active,
# 1=send delivered, 2=send lost, 3=send DELAYED (delivered one step later,
# modelling a crossed/stale message).
steps = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=3), finite),
    min_size=1,
    max_size=80,
)


def run_script(script):
    a = HardenedEdgeState(MassPair(0.0, 0.0), initiator=True)
    b = HardenedEdgeState(MassPair(0.0, 0.0), initiator=False)
    phi = {id(a): MassPair(0.0, 0.0), id(b): MassPair(0.0, 0.0)}
    delayed = []  # (dst, payload)

    def deliver(dst, payload):
        effect = dst.receive(payload)
        phi[id(dst)] = phi[id(dst)] + effect.phi_delta_efficient

    for actor_is_a, action, amount in script:
        src, dst = (a, b) if actor_is_a else (b, a)
        if action == 0:
            half = MassPair(amount, 1.0).half()
            src.add_to_active(half)
            phi[id(src)] = phi[id(src)] + half
        else:
            payload = src.payload()
            if action == 1:
                deliver(dst, payload)
            elif action == 3:
                delayed.append((dst, payload))
        # Flush one delayed message per step (stale by >= 1 step).
        if delayed and action != 3:
            dst_late, payload_late = delayed.pop(0)
            deliver(dst_late, payload_late)
    for dst_late, payload_late in delayed:
        deliver(dst_late, payload_late)
    return a, b, phi[id(a)], phi[id(b)]


class TestHardenedEdgeInvariants:
    @given(steps)
    @settings(max_examples=80, deadline=None)
    def test_follower_never_ahead_and_skew_bounded(self, script):
        a, b, _, _ = run_script(script)
        assert b.era <= a.era <= b.era + 1

    @given(steps)
    @settings(max_examples=80, deadline=None)
    def test_state_stays_finite(self, script):
        a, b, phi_a, phi_b = run_script(script)
        for edge in (a, b):
            assert edge.flow(0).is_finite()
            assert edge.flow(1).is_finite()
        assert phi_a.is_finite()
        assert phi_b.is_finite()

    @given(steps)
    @settings(max_examples=60, deadline=None)
    def test_no_deadlock_and_exact_settled_conservation(self, script):
        a, b, phi_a, phi_b = run_script(script)
        # Settle with clean alternating exchanges; the hardened machine
        # must always resynchronize (no mutual-ignore state exists).
        # Note: under strict alternation the initiator can stay permanently
        # one (trivial-cancel) era ahead at the snapshot instant; the
        # meaningful liveness property is per-slot conservation plus the
        # bounded skew, not era equality.
        settled = False
        for _ in range(12):
            effect = b.receive(a.payload())
            phi_b = phi_b + effect.phi_delta_efficient
            effect = a.receive(b.payload())
            phi_a = phi_a + effect.phi_delta_efficient
            if all(a.flow(s).exactly_equals(-b.flow(s)) for s in (0, 1)):
                settled = True
                break
        assert settled, "hardened edge failed to resynchronize"
        assert b.era <= a.era <= b.era + 1
        # Exact global conservation: the two phi's cancel exactly in the
        # weight coordinate... up to float rounding of the value stream.
        total = phi_a + phi_b
        assert total.value == pytest.approx(0.0, abs=1e-9)
        assert total.weight == pytest.approx(0.0, abs=1e-9)

    @given(steps)
    @settings(max_examples=60, deadline=None)
    def test_frozen_values_exactly_opposite_after_catchup(self, script):
        a, b, _, _ = run_script(script)
        # Whenever eras agree, the latest completed cancellation's frozen
        # values must be exact negations (the frozen-verified catch-up).
        if a.era == b.era and a.era > 0:
            assert a.payload().frozen.exactly_equals(-b.payload().frozen)
