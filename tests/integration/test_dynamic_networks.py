"""Integration: dynamic networks — churn, partition-and-heal, outages.

The reproduction's dynamic-network findings as executable assertions:

- push-flow reconverges *exactly* after any membership change: its flows
  are antisymmetric at round boundaries, so excluding a node (and zeroing
  the incident flows on the survivor side) restores exactly the
  survivors' conserved mass, and a rejoin restores the full total.
- push-sum is exact under edge-only partitions (no mass ever leaves) but
  converges to the wrong value under node churn — the departed node's
  in-protocol mass is simply gone.
- PCF under node churn/outage carries a permanent residual offset: the
  survivors' phi retains cancelled mass whose counterpart lived on the
  departed node and was wiped by ``reset_for_join``.
"""

import numpy as np
import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.algorithms.registry import instantiate
from repro.dynamics import (
    TraceRecorder,
    load_trace,
    partition_and_heal,
    regional_outage,
    replay_from_trace,
    scripted_churn,
)
from repro.faults import IidMessageLoss
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import FixedSchedule, UniformGossipSchedule
from repro.topology import hypercube, ring
from repro.tracing.anomaly import PartitionHealDetector
from repro.vectorized.batched import BatchedEngine, BatchedRun
from repro.vectorized.parity import materialize_schedule

TOPO = hypercube(4)
DATA = list(np.arange(float(TOPO.n)))
TRUTH = float(np.mean(DATA))
INITIAL = initial_mass_pairs(AggregateKind.AVERAGE, DATA)


def run_dynamic(
    algorithm,
    schedule,
    *,
    rounds=200,
    observers=(),
    message_fault=None,
    sched_seed=5,
):
    algs = instantiate(algorithm, TOPO, INITIAL)
    engine = SynchronousEngine(
        TOPO,
        algs,
        UniformGossipSchedule(TOPO.n, sched_seed),
        observers=list(observers),
        message_fault=message_fault,
        topology_schedule=schedule,
    )
    engine.run(rounds)
    return engine, algs


def live_errors(engine, algs):
    return [
        abs(float(np.max(np.atleast_1d(np.asarray(algs[i].estimate())))) - TRUTH)
        for i in engine.live_nodes()
    ]


CHURN = scripted_churn([(30, "leave", 3), (60, "join", 3)])
PARTITION = partition_and_heal(TOPO, round=40, heal_round=80, seed=2)
OUTAGE = regional_outage(TOPO, round=40, duration=30, region_count=4, region=1)


class TestChurnMassConservation:
    def test_push_flow_reconverges_exactly_after_churn(self):
        engine, algs = run_dynamic("push_flow", CHURN)
        assert max(live_errors(engine, algs)) < 1e-9

    def test_push_sum_loses_departed_mass_under_churn(self):
        engine, algs = run_dynamic("push_sum", CHURN)
        errors = live_errors(engine, algs)
        # All nodes agree on a *wrong* value: the leaving node took its
        # in-protocol mass with it, the rejoin restored only the initial
        # share.
        assert min(errors) > 0.05
        assert max(errors) - min(errors) < 1e-9

    def test_pcf_carries_orphaned_cancellation_residual(self):
        engine, algs = run_dynamic("push_cancel_flow", CHURN)
        errors = live_errors(engine, algs)
        # Converged (tiny spread) but offset: cancelled mass paired with
        # the departed node's phi was wiped by reset_for_join.
        assert 1e-3 < max(errors) < 1.0
        assert max(errors) - min(errors) < 1e-6

    def test_push_flow_survives_regional_outage_exactly(self):
        engine, algs = run_dynamic("push_flow", OUTAGE)
        assert max(live_errors(engine, algs)) < 1e-9


class TestPartitionAndHeal:
    @pytest.mark.parametrize(
        "algorithm,bound",
        [
            ("push_sum", 1e-9),  # edge-only cut: mass never leaves
            ("push_flow", 1e-6),
            ("push_cancel_flow", 1e-2),
            ("push_cancel_flow_hardened", 5e-2),
        ],
    )
    def test_reconverges_after_heal(self, algorithm, bound):
        engine, algs = run_dynamic(algorithm, PARTITION)
        assert max(live_errors(engine, algs)) < bound

    def test_detector_stays_quiet_when_partition_heals(self):
        detector = PartitionHealDetector()
        run_dynamic("push_flow", PARTITION, observers=[detector])
        assert not detector.fired

    def test_detector_fires_when_heal_never_comes(self):
        from repro.dynamics import TopologySchedule

        never_heal = TopologySchedule(
            [d for d in PARTITION.deltas if d.round == 40]
        )
        detector = PartitionHealDetector()
        run_dynamic("push_flow", never_heal, observers=[detector])
        assert detector.fired
        assert detector.alerts[0]["reason"] == "never_healed"


class TestObjectBatchedParity:
    @pytest.mark.parametrize(
        "algorithm",
        [
            "push_sum",
            "push_flow",
            "push_cancel_flow",
            "push_cancel_flow_hardened",
        ],
    )
    def test_scripted_churn_parity_bit_for_bit(self, algorithm):
        topo = ring(8)
        rounds = 60
        leave, rejoin, node = 20, 40, 3
        schedule = scripted_churn([(leave, "leave", node), (rejoin, "join", node)])
        targets = materialize_schedule(
            UniformGossipSchedule(topo.n, 7), topo, rounds
        )
        # While the node is away it is silent and never targeted, so both
        # engines face the identical message pattern.
        away = slice(leave, rejoin)
        targets[away, node] = -1
        block = targets[away]
        block[block == node] = -1
        targets[away] = block

        data = np.random.default_rng(4).uniform(size=topo.n)
        initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
        algs = instantiate(algorithm, topo, initial)
        obj_engine = SynchronousEngine(
            topo,
            algs,
            FixedSchedule(targets.tolist()),
            topology_schedule=schedule,
        )
        obj_engine.run(rounds)
        obj = np.stack(
            [np.atleast_1d(np.asarray(alg.estimate())) for alg in algs]
        )

        batch = BatchedEngine(
            algorithm,
            [
                BatchedRun(
                    topology=topo,
                    values=data,
                    weights=np.ones(topo.n),
                    targets=targets,
                    topology_schedule=schedule,
                )
            ],
        )
        batch.run(rounds)
        vec = batch.estimates()[0]
        np.testing.assert_array_equal(obj, vec)


class TestTraceRecordReplay:
    def _replay(self, path, sched_seed):
        replay = replay_from_trace(load_trace(path))
        engine, algs = run_dynamic(
            "push_flow",
            replay.topology_schedule,
            message_fault=replay.message_fault,
            sched_seed=sched_seed,
        )
        return np.stack(
            [np.atleast_1d(np.asarray(alg.estimate())) for alg in algs]
        )

    @pytest.mark.parametrize("suffix", [".jsonl", ".csv"])
    def test_replay_reproduces_recorded_run_exactly(self, tmp_path, suffix):
        recorder = TraceRecorder()
        engine, algs = run_dynamic(
            "push_flow",
            CHURN,
            observers=[recorder],
            message_fault=IidMessageLoss(0.2, seed=13),
        )
        original = np.stack(
            [np.atleast_1d(np.asarray(alg.estimate())) for alg in algs]
        )
        path = recorder.save(tmp_path / f"trace{suffix}")

        first = self._replay(path, sched_seed=5)
        second = self._replay(path, sched_seed=5)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, original)


class TestChurnGridCampaign:
    def test_churn_grid_runs_on_object_and_vectorized(self, tmp_path):
        import json

        from repro.campaigns.builtin import CHURN_GRID
        from repro.campaigns.runner import run_campaign
        from repro.campaigns.spec import CampaignSpec

        base = {
            **CHURN_GRID,
            "algorithms": ["push_sum", "push_flow"],
            "seeds": [0],
            "rounds": 60,
        }
        records = {}
        for engine in ("object", "vectorized"):
            spec = CampaignSpec.from_dict({**base, "engine": engine})
            run = run_campaign(spec, tmp_path / engine, log=lambda _m: None)
            assert run.failed == 0
            lines = [
                json.loads(line)
                for line in (tmp_path / engine / "results.jsonl")
                .read_text()
                .splitlines()
            ]
            records[engine] = lines
        obj, vec = records["object"], records["vectorized"]
        assert len(obj) == len(vec) == 8
        assert {frozenset(r) for r in obj} == {frozenset(r) for r in vec}
        by_fault = {
            (r["algorithm"], r["fault"]): r for r in obj
        }
        for (algorithm, fault), record in by_fault.items():
            if fault == "none":
                assert record["dynamics"] is None
            else:
                assert record["dynamics"]["deltas"] > 0
