"""Integration: distributed QR (dmGS) end to end — the Sec. IV case study."""

import numpy as np

from repro.experiments.workloads import random_matrix
from repro.linalg import (
    ReductionService,
    distributed_qr,
    local_mgs,
)
from repro.topology import hypercube, torus3d


class TestDistributedQRCorrectness:
    def test_pcf_reaches_reduction_level_accuracy(self):
        topo = hypercube(4)
        v = random_matrix(topo.n, 6, seed=0)
        result = distributed_qr(v, topo, algorithm="push_cancel_flow", seed=0)
        assert result.factorization_error < 1e-12
        assert result.orthogonality_error < 1e-11
        assert result.result.failed_reductions == 0

    def test_push_sum_service_works_failure_free(self):
        topo = hypercube(4)
        v = random_matrix(topo.n, 5, seed=1)
        result = distributed_qr(v, topo, algorithm="push_sum", seed=0)
        assert result.factorization_error < 1e-12

    def test_q_columns_normalized_and_orthogonal(self):
        topo = hypercube(4)
        v = random_matrix(topo.n, 6, seed=2)
        result = distributed_qr(v, topo, algorithm="push_cancel_flow", seed=3)
        q = result.q.gather()
        gram = q.T @ q
        np.testing.assert_allclose(gram, np.eye(6), atol=1e-10)

    def test_r_upper_triangular_positive_diagonal(self):
        topo = hypercube(3)
        v = random_matrix(topo.n, 4, seed=3)
        result = distributed_qr(v, topo, algorithm="push_cancel_flow", seed=4)
        for r in result.r_blocks:
            assert np.allclose(np.tril(r, -1), 0.0)
            assert (np.diag(r) > 0).all()

    def test_matches_local_mgs_shape(self):
        topo = hypercube(3)
        v = random_matrix(topo.n, 4, seed=4)
        result = distributed_qr(v, topo, algorithm="push_cancel_flow", seed=5)
        q_ref, r_ref = local_mgs(v)
        np.testing.assert_allclose(result.q.gather(), q_ref, atol=1e-9)
        np.testing.assert_allclose(result.r_blocks[0], r_ref, atol=1e-9)

    def test_multiple_rows_per_node(self):
        # dmGS works for all rows >= N (paper Sec. IV).
        topo = hypercube(3)
        v = random_matrix(3 * topo.n + 2, 5, seed=5)
        result = distributed_qr(v, topo, algorithm="push_cancel_flow", seed=6)
        assert result.factorization_error < 1e-12

    def test_fused_mode_accuracy(self):
        topo = hypercube(4)
        v = random_matrix(topo.n, 6, seed=6)
        result = distributed_qr(
            v, topo, algorithm="push_cancel_flow", seed=7, mode="fused"
        )
        assert result.factorization_error < 1e-12
        # Fused mode halves the reductions: m instead of 2m - 1.
        assert result.result.reductions == 6

    def test_two_phase_reduction_count(self):
        topo = hypercube(3)
        v = random_matrix(topo.n, 5, seed=7)
        result = distributed_qr(v, topo, algorithm="push_cancel_flow", seed=8)
        assert result.result.reductions == 2 * 5 - 1

    def test_torus_topology(self):
        topo = torus3d(2)
        v = random_matrix(topo.n, 4, seed=8)
        result = distributed_qr(v, topo, algorithm="push_cancel_flow", seed=9)
        assert result.factorization_error < 1e-12


class TestFig8Contrast:
    def test_pf_worse_than_pcf_at_scale(self):
        """The Fig. 8 headline: dmGS(PF) degrades with N, dmGS(PCF) holds."""
        topo = hypercube(6)  # 64 nodes
        v = random_matrix(topo.n, 8, seed=10)
        pf = distributed_qr(v, topo, algorithm="push_flow", seed=11)
        pcf = distributed_qr(v, topo, algorithm="push_cancel_flow", seed=11)
        assert pcf.factorization_error < 1e-12
        assert pf.factorization_error > 2 * pcf.factorization_error
        # PF reductions cap out; PCF's converge.
        assert pf.result.failed_reductions > 0
        assert pcf.result.failed_reductions == 0

    def test_r_consistency_tracks_reduction_quality(self):
        topo = hypercube(5)
        v = random_matrix(topo.n, 6, seed=12)
        pf = distributed_qr(v, topo, algorithm="push_flow", seed=13)
        pcf = distributed_qr(v, topo, algorithm="push_cancel_flow", seed=13)
        assert pcf.r_consistency < pf.r_consistency


class TestServiceBehaviour:
    def test_stats_accumulate_across_factorization(self):
        topo = hypercube(3)
        v = random_matrix(topo.n, 4, seed=14)
        service = ReductionService(topo, algorithm="push_cancel_flow", seed=0)
        from repro.linalg import RowDistributedMatrix, dmgs

        dist = RowDistributedMatrix.from_matrix(v, topo.n)
        result = dmgs(dist, service)
        assert service.stats.calls == result.reductions
        assert service.stats.total_rounds == result.total_rounds
        assert service.stats.total_messages > 0
