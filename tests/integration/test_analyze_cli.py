"""End-to-end analytics: campaign sweep -> analyze CLI -> figures/dashboard.

The same path the CI ``analyze-smoke`` job drives: run the builtin smoke
campaign, then ``python -m repro.experiments analyze`` must regenerate the
registered figures, write a self-contained HTML dashboard, and export the
campaign metrics — failing on any unrenderable figure unless told not to.
"""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.campaigns.cli import main as analyze_cli
from repro.analysis.campaigns.figures import FIGURES
from repro.campaigns import load_spec, run_campaign
from repro.campaigns.cli import main as campaign_cli


@pytest.fixture(scope="module")
def smoke_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("smoke-campaign")
    run = run_campaign(load_spec("smoke"), out, log=lambda _m: None)
    assert run.failed == 0
    return out


def test_analyze_regenerates_figures_and_dashboard(smoke_dir, capsys):
    # The static object-engine smoke campaign cannot feed the
    # dynamic-topology figure or the fused-kernel-time figure, so
    # --allow-missing-data keeps exit 0; vectorized churn-grid campaigns
    # render all.
    code = analyze_cli([str(smoke_dir), "--allow-missing-data", "--csv"])
    assert code == 0

    out_dir = smoke_dir / "analysis"
    svgs = sorted(p.name for p in out_dir.glob("*.svg"))
    assert len(svgs) >= len(FIGURES) - 2
    for svg in out_dir.glob("*.svg"):
        ET.fromstring(svg.read_text())

    dashboard = (out_dir / "dashboard.html").read_text()
    assert "<svg" in dashboard
    assert 'id="fig-recovery-rounds"' in dashboard
    assert "push_cancel_flow" in dashboard

    assert (out_dir / "metrics" / "metrics.prom").stat().st_size > 0
    assert (out_dir / "cells.csv").read_text().count("\n") >= 4

    stdout = capsys.readouterr().out
    assert "coverage: expected=4, recorded=4, ok=4" in stdout


def test_analyze_strict_fails_on_unrenderable_figure(smoke_dir, capsys):
    code = analyze_cli([str(smoke_dir), "--out", str(smoke_dir / "strict")])
    assert code == 1
    assert "NOT RENDERED" in capsys.readouterr().err


def test_analyze_subset_and_unknown_figures(smoke_dir, capsys):
    code = analyze_cli(
        [str(smoke_dir), "--figures", "recovery-rounds", "--quiet",
         "--no-metrics", "--no-dashboard"]
    )
    assert code == 0
    assert analyze_cli([str(smoke_dir), "--figures", "bogus"]) == 2


def test_analyze_list_figures(capsys):
    assert analyze_cli(["--list-figures"]) == 0
    out = capsys.readouterr().out
    for name in FIGURES:
        assert name in out


def test_analyze_missing_directory(tmp_path, capsys):
    assert analyze_cli([str(tmp_path / "nope")]) == 1


def test_experiments_cli_dispatches_analyze(smoke_dir, capsys):
    from repro.experiments.cli import main as experiments_cli

    code = experiments_cli(
        ["analyze", str(smoke_dir), "--quiet", "--allow-missing-data",
         "--no-metrics", "--out", str(smoke_dir / "dispatch")]
    )
    assert code == 0
    assert (smoke_dir / "dispatch" / "dashboard.html").exists()


def test_campaign_cli_strict_alerts_exit(smoke_dir, tmp_path, capsys):
    # The smoke campaign's PF cells trip the restart-regression detector, so
    # --strict-alerts must turn an otherwise green sweep into exit 1.
    code = campaign_cli(
        ["smoke", "--out", str(smoke_dir), "--quiet", "--no-report",
         "--strict-alerts"]
    )
    assert code == 1
    assert "anomaly alert" in capsys.readouterr().err
