"""One campaign grid, three execution engines, one record schema.

The ``engine`` spec key must be an implementation detail of *how* cells
execute, never of *what* a results.jsonl record looks like: downstream
analysis reads records without knowing which engine produced them. The
vectorized and batched paths share the whole-array kernels and the same
per-cell RNG streams, so their records must agree bit-for-bit (modulo
wall-clock and the engine tag itself).
"""

import pytest

from repro.campaigns import CampaignSpec, load_results, run_campaign
from repro.campaigns.builtin import BUILTIN_SPECS
from repro.exceptions import ConfigurationError

ENGINES = ("object", "vectorized", "batched")


def grid_spec(engine, backend=None):
    name = f"grid-{engine}" if backend is None else f"grid-{engine}-{backend}"
    return CampaignSpec.from_dict(
        {
            "name": name,
            "engine": engine,
            "backend": backend,
            "algorithms": ["push_flow", "push_cancel_flow"],
            "topologies": [{"family": "hypercube", "n": 16}],
            "faults": [
                {"kind": "none"},
                {"kind": "link_failure", "round": 40},
                {"kind": "message_loss", "rate": 0.1},
            ],
            "seeds": [0, 1],
            "rounds": 120,
            "epsilon": 1e-6,
        }
    )


@pytest.fixture(scope="module")
def engine_results(tmp_path_factory):
    results = {}
    for engine in ENGINES:
        out = tmp_path_factory.mktemp(engine)
        run = run_campaign(grid_spec(engine), out)
        assert (run.ok, run.failed) == (12, 0)
        results[engine] = load_results(out)
    return results


class TestSchemaIdentity:
    def test_same_cells_recorded(self, engine_results):
        keys = {e: set(r) for e, r in engine_results.items()}
        assert keys["object"] == keys["vectorized"] == keys["batched"]
        assert len(keys["object"]) == 12

    def test_same_record_fields_everywhere(self, engine_results):
        field_sets = {
            tuple(sorted(record))
            for records in engine_results.values()
            for record in records.values()
        }
        assert len(field_sets) == 1

    def test_records_tagged_with_their_engine(self, engine_results):
        for engine, records in engine_results.items():
            assert all(r["engine"] == engine for r in records.values())

    def test_all_cells_ok_and_converged_when_fault_free(self, engine_results):
        for records in engine_results.values():
            assert all(r["status"] == "ok" for r in records.values())
            for cell_id, record in records.items():
                if "|none|" in cell_id:
                    assert record["converged"] is True

    def test_vectorized_and_batched_agree_bit_for_bit(self, engine_results):
        # Same seed streams, same kernels: everything but the engine tag
        # and wall-clock must be *identical*, not merely close.
        varying = {"engine", "wall_s", "kernel_seconds", "recorded_at"}
        for cell_id, vec in engine_results["vectorized"].items():
            bat = engine_results["batched"][cell_id]
            for key in vec:
                if key not in varying:
                    assert vec[key] == bat[key], (cell_id, key)


class TestBatchedRunnerBehavior:
    def test_resume_skips_recorded_cells(self, tmp_path):
        spec = grid_spec("batched")
        first = run_campaign(spec, tmp_path)
        assert (first.executed, first.skipped) == (12, 0)
        second = run_campaign(spec, tmp_path)
        assert (second.executed, second.skipped) == (0, 12)

    def test_smoke_batched_builtin_expands(self):
        spec = CampaignSpec.from_dict(BUILTIN_SPECS["smoke-batched"])
        assert spec.engine == "batched"
        assert len(spec.expand()) == 4


class TestBackendAxis:
    """The ``backend`` spec key: one grid, three backends, one schema.

    The kernel backend is a deeper implementation detail than the engine:
    it must never leak into *what* a record says, only into the resolved
    ``backend`` tag. On a numba-less box the numba spec falls back to
    numpy (with a RuntimeWarning) and must then reproduce the numpy run
    bit-for-bit; with numba installed the jitted run stays within close
    tolerance of the numpy reference.
    """

    @pytest.fixture(scope="class")
    def backend_results(self, tmp_path_factory):
        import warnings

        results = {}
        for label, engine, backend in (
            ("object", "object", None),
            ("numpy", "batched", "numpy"),
            ("numba", "batched", "numba"),
        ):
            out = tmp_path_factory.mktemp(f"backend-{label}")
            with warnings.catch_warnings():
                # The numba spec on a numba-less box warns per group.
                warnings.simplefilter("ignore", RuntimeWarning)
                run = run_campaign(grid_spec(engine, backend), out)
            assert (run.ok, run.failed) == (12, 0)
            results[label] = load_results(out)
        return results

    def test_schema_identical_across_backends(self, backend_results):
        field_sets = {
            tuple(sorted(record))
            for records in backend_results.values()
            for record in records.values()
        }
        assert len(field_sets) == 1
        keys = {label: set(r) for label, r in backend_results.items()}
        assert keys["object"] == keys["numpy"] == keys["numba"]
        assert len(keys["object"]) == 12

    def test_records_carry_resolved_backend(self, backend_results):
        assert all(
            r["backend"] is None
            for r in backend_results["object"].values()
        )
        assert all(
            r["backend"] == "numpy"
            for r in backend_results["numpy"].values()
        )
        # The numba grid records what actually ran: "numba" when numba is
        # installed, "numpy" after the import-guard fallback.
        resolved = {r["backend"] for r in backend_results["numba"].values()}
        assert len(resolved) == 1
        assert resolved <= {"numpy", "numba"}

    def test_numba_grid_matches_numpy_reference(self, backend_results):
        from repro.vectorized.backends import NUMBA_AVAILABLE

        varying = {"wall_s", "kernel_seconds", "recorded_at", "backend"}
        for key, ref in backend_results["numpy"].items():
            alt = backend_results["numba"][key]
            for field in ref:
                if field in varying:
                    continue
                if NUMBA_AVAILABLE and isinstance(ref[field], float):
                    assert alt[field] == pytest.approx(
                        ref[field], rel=1e-9, abs=1e-12
                    ), (key, field)
                else:
                    # Fallback path: bit-for-bit the same numpy kernels.
                    assert ref[field] == alt[field], (key, field)


class TestEngineSpecValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="engine"):
            CampaignSpec.from_dict(
                {
                    "name": "bad",
                    "engine": "quantum",
                    "algorithms": ["push_flow"],
                    "topologies": [{"family": "hypercube", "n": 8}],
                    "faults": [{"kind": "none"}],
                    "seeds": [0],
                    "rounds": 10,
                    "epsilon": 1e-3,
                }
            )

    @pytest.mark.parametrize("engine", ["vectorized", "batched"])
    def test_unsupported_fault_kind_rejected_upfront(self, engine):
        # bit_flip is valid on the object path but has no whole-array
        # implementation; the spec must fail fast, not per cell.
        with pytest.raises(ConfigurationError, match="faults"):
            CampaignSpec.from_dict(
                {
                    "name": "bad",
                    "engine": engine,
                    "algorithms": ["push_flow"],
                    "topologies": [{"family": "hypercube", "n": 8}],
                    "faults": [{"kind": "bit_flip", "rate": 0.01}],
                    "seeds": [0],
                    "rounds": 10,
                    "epsilon": 1e-3,
                }
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            CampaignSpec.from_dict(
                {
                    "name": "bad",
                    "engine": "batched",
                    "backend": "cuda",
                    "algorithms": ["push_flow"],
                    "topologies": [{"family": "hypercube", "n": 8}],
                    "faults": [{"kind": "none"}],
                    "seeds": [0],
                    "rounds": 10,
                    "epsilon": 1e-3,
                }
            )

    def test_backend_on_object_engine_rejected(self):
        # The object engine has no whole-array kernels; a backend there
        # would silently mean nothing, so the spec refuses it up front.
        with pytest.raises(ConfigurationError, match="vectorized engine"):
            CampaignSpec.from_dict(
                {
                    "name": "bad",
                    "engine": "object",
                    "backend": "numpy",
                    "algorithms": ["push_flow"],
                    "topologies": [{"family": "hypercube", "n": 8}],
                    "faults": [{"kind": "none"}],
                    "seeds": [0],
                    "rounds": 10,
                    "epsilon": 1e-3,
                }
            )

    def test_algorithm_without_vector_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="push_flow_incremental"):
            CampaignSpec.from_dict(
                {
                    "name": "bad",
                    "engine": "batched",
                    "algorithms": ["push_flow_incremental"],
                    "topologies": [{"family": "hypercube", "n": 8}],
                    "faults": [{"kind": "none"}],
                    "seeds": [0],
                    "rounds": 10,
                    "epsilon": 1e-3,
                }
            )
