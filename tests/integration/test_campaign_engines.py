"""One campaign grid, three execution engines, one record schema.

The ``engine`` spec key must be an implementation detail of *how* cells
execute, never of *what* a results.jsonl record looks like: downstream
analysis reads records without knowing which engine produced them. The
vectorized and batched paths share the whole-array kernels and the same
per-cell RNG streams, so their records must agree bit-for-bit (modulo
wall-clock and the engine tag itself).
"""

import pytest

from repro.campaigns import CampaignSpec, load_results, run_campaign
from repro.campaigns.builtin import BUILTIN_SPECS
from repro.exceptions import ConfigurationError

ENGINES = ("object", "vectorized", "batched")


def grid_spec(engine):
    return CampaignSpec.from_dict(
        {
            "name": f"grid-{engine}",
            "engine": engine,
            "algorithms": ["push_flow", "push_cancel_flow"],
            "topologies": [{"family": "hypercube", "n": 16}],
            "faults": [
                {"kind": "none"},
                {"kind": "link_failure", "round": 40},
                {"kind": "message_loss", "rate": 0.1},
            ],
            "seeds": [0, 1],
            "rounds": 120,
            "epsilon": 1e-6,
        }
    )


@pytest.fixture(scope="module")
def engine_results(tmp_path_factory):
    results = {}
    for engine in ENGINES:
        out = tmp_path_factory.mktemp(engine)
        run = run_campaign(grid_spec(engine), out)
        assert (run.ok, run.failed) == (12, 0)
        results[engine] = load_results(out)
    return results


class TestSchemaIdentity:
    def test_same_cells_recorded(self, engine_results):
        keys = {e: set(r) for e, r in engine_results.items()}
        assert keys["object"] == keys["vectorized"] == keys["batched"]
        assert len(keys["object"]) == 12

    def test_same_record_fields_everywhere(self, engine_results):
        field_sets = {
            tuple(sorted(record))
            for records in engine_results.values()
            for record in records.values()
        }
        assert len(field_sets) == 1

    def test_records_tagged_with_their_engine(self, engine_results):
        for engine, records in engine_results.items():
            assert all(r["engine"] == engine for r in records.values())

    def test_all_cells_ok_and_converged_when_fault_free(self, engine_results):
        for records in engine_results.values():
            assert all(r["status"] == "ok" for r in records.values())
            for cell_id, record in records.items():
                if "|none|" in cell_id:
                    assert record["converged"] is True

    def test_vectorized_and_batched_agree_bit_for_bit(self, engine_results):
        # Same seed streams, same kernels: everything but the engine tag
        # and wall-clock must be *identical*, not merely close.
        varying = {"engine", "wall_s", "recorded_at"}
        for cell_id, vec in engine_results["vectorized"].items():
            bat = engine_results["batched"][cell_id]
            for key in vec:
                if key not in varying:
                    assert vec[key] == bat[key], (cell_id, key)


class TestBatchedRunnerBehavior:
    def test_resume_skips_recorded_cells(self, tmp_path):
        spec = grid_spec("batched")
        first = run_campaign(spec, tmp_path)
        assert (first.executed, first.skipped) == (12, 0)
        second = run_campaign(spec, tmp_path)
        assert (second.executed, second.skipped) == (0, 12)

    def test_smoke_batched_builtin_expands(self):
        spec = CampaignSpec.from_dict(BUILTIN_SPECS["smoke-batched"])
        assert spec.engine == "batched"
        assert len(spec.expand()) == 4


class TestEngineSpecValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="engine"):
            CampaignSpec.from_dict(
                {
                    "name": "bad",
                    "engine": "quantum",
                    "algorithms": ["push_flow"],
                    "topologies": [{"family": "hypercube", "n": 8}],
                    "faults": [{"kind": "none"}],
                    "seeds": [0],
                    "rounds": 10,
                    "epsilon": 1e-3,
                }
            )

    @pytest.mark.parametrize("engine", ["vectorized", "batched"])
    def test_unsupported_fault_kind_rejected_upfront(self, engine):
        # bit_flip is valid on the object path but has no whole-array
        # implementation; the spec must fail fast, not per cell.
        with pytest.raises(ConfigurationError, match="faults"):
            CampaignSpec.from_dict(
                {
                    "name": "bad",
                    "engine": engine,
                    "algorithms": ["push_flow"],
                    "topologies": [{"family": "hypercube", "n": 8}],
                    "faults": [{"kind": "bit_flip", "rate": 0.01}],
                    "seeds": [0],
                    "rounds": 10,
                    "epsilon": 1e-3,
                }
            )

    def test_algorithm_without_vector_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="push_flow_incremental"):
            CampaignSpec.from_dict(
                {
                    "name": "bad",
                    "engine": "batched",
                    "algorithms": ["push_flow_incremental"],
                    "topologies": [{"family": "hypercube", "n": 8}],
                    "faults": [{"kind": "none"}],
                    "seeds": [0],
                    "rounds": 10,
                    "epsilon": 1e-3,
                }
            )
