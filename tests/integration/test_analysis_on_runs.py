"""Integration: analysis tools applied to real protocol runs.

Connects the theory layer to the simulators: measured decay rates respect
the spectral prediction's ordering across topologies, the disagreement
potential contracts geometrically, and PF's converged flows on arbitrary
trees match the analytic subtree-surplus flows exactly.
"""


import numpy as np
import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs, true_aggregate
from repro.algorithms.registry import instantiate
from repro.analysis import (
    PotentialHistory,
    equilibrium_flows,
    fit_decay_rate,
    spectral_rate_bound,
)
from repro.metrics.history import ErrorHistory
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import UniformGossipSchedule
from repro.topology import binary_tree, complete, hypercube, ring, star


def run_history(topo, algorithm, data, seed, rounds, extra_observers=()):
    truth = true_aggregate(AggregateKind.AVERAGE, list(data))
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    algs = instantiate(algorithm, topo, initial)
    history = ErrorHistory(truth)
    engine = SynchronousEngine(
        topo,
        algs,
        UniformGossipSchedule(topo.n, seed),
        observers=[history, *extra_observers],
    )
    engine.run(rounds)
    return algs, history, truth


class TestDecayRates:
    def test_rate_ordering_matches_spectral_ordering(self):
        # Well-connected graphs decay distinctly faster than the ring; at
        # n=16 gossip (one neighbor per round) limits complete and the
        # hypercube to nearly the same rate, so only the dense-vs-sparse
        # gap is asserted strictly.
        rates = {}
        for topo in (complete(16), hypercube(4), ring(16)):
            data = np.random.default_rng(0).uniform(size=topo.n)
            _, history, _ = run_history(topo, "push_cancel_flow", data, 3, 400)
            fit = fit_decay_rate(history.max_errors, skip=10, floor=1e-14)
            rates[topo.name] = fit.rate
            assert 0.0 < fit.rate < 1.0
        assert rates["complete"] < rates["ring"]
        assert rates["hypercube(4)"] < rates["ring"]
        assert rates["complete"] < 1.05 * rates["hypercube(4)"]

    def test_measured_rate_no_faster_than_spectral_bound(self):
        # One-random-neighbor gossip cannot beat the full synchronous
        # diffusion the spectral bound describes (allow 2% fitting slack).
        topo = hypercube(4)
        data = np.random.default_rng(1).uniform(size=topo.n)
        _, history, _ = run_history(topo, "push_cancel_flow", data, 5, 400)
        fit = fit_decay_rate(history.max_errors, skip=10, floor=1e-14)
        assert fit.rate >= spectral_rate_bound(topo) * 0.98


class TestPotential:
    def test_potential_contracts_geometrically(self):
        topo = hypercube(5)
        data = np.random.default_rng(2).uniform(size=topo.n)
        truth = float(np.mean(data))
        potential = PotentialHistory(truth)
        run_history(topo, "push_cancel_flow", data, 7, 250, (potential,))
        factors = potential.contraction_factors(skip=10)
        # Median per-round contraction strictly below 1.
        assert float(np.median(factors)) < 0.95
        # The potential at the end is far below its start.
        assert potential.potentials[-1] < 1e-20 * potential.potentials[0]

    def test_weight_dispersion_stays_bounded(self):
        topo = hypercube(4)
        data = np.random.default_rng(3).uniform(size=topo.n)
        truth = float(np.mean(data))
        potential = PotentialHistory(truth)
        run_history(topo, "push_cancel_flow", data, 9, 300, (potential,))
        # Push-style weights fluctuate but never collapse or explode.
        tail = potential.weight_dispersions[50:]
        assert 0.0 < max(tail) < 5.0


class TestTreeFlowPredictions:
    @pytest.mark.parametrize(
        "topo_factory", [star, binary_tree], ids=["star", "binary_tree"]
    )
    def test_pf_converges_to_analytic_tree_flows(self, topo_factory):
        n = 9
        topo = topo_factory(n)
        rng = np.random.default_rng(4)
        data = list(rng.uniform(1.0, 3.0, size=n))
        aggregate = float(np.mean(data))
        algs, history, truth = run_history(topo, "push_flow", data, 11, 6000)
        assert history.final_max_error() < 1e-9

        predicted = equilibrium_flows(topo, data, [1.0] * n)
        for i in topo.nodes():
            for jneigh, flow in algs[i].local_flows().items():
                measured = flow.value - aggregate * flow.weight
                assert measured == pytest.approx(
                    predicted[(i, jneigh)], abs=1e-7
                ), (i, jneigh)
