"""End-to-end campaign sweep: the bundled smoke grid + report + resume.

This is the same path the CI ``campaign-smoke`` job drives from the shell:
run the builtin ``smoke`` campaign (PF vs PCF under one permanent link
failure on hypercube-16), summarize it, then prove the checkpoint makes a
re-invocation a no-op.
"""

from repro.campaigns import load_results, load_spec, run_campaign
from repro.campaigns.report import render_report, summarize
from repro.campaigns.cli import main as campaign_cli
from repro.campaigns.runner import as_float


def test_smoke_campaign_end_to_end(tmp_path):
    spec = load_spec("smoke")
    run = run_campaign(spec, tmp_path, log=lambda _m: None)
    assert run.total_cells == 4
    assert (run.ok, run.failed) == (4, 0)

    records = load_results(tmp_path)
    assert len(records) == 4

    # Every cell carries the fault-recovery outcome around round 40.
    for record in records.values():
        assert record["status"] == "ok"
        assert record["event_round"] == 40
        assert record["recovery_rounds"] is not None

    # The paper's headline (Fig. 4 vs Fig. 7): PCF recovers from the link
    # failure in far fewer rounds than PF, per seed.
    by_alg = {}
    for record in records.values():
        by_alg.setdefault(record["algorithm"], []).append(
            as_float(record["recovery_rounds"])
        )
    pf = sum(by_alg["push_flow"]) / len(by_alg["push_flow"])
    pcf = sum(by_alg["push_cancel_flow"]) / len(by_alg["push_cancel_flow"])
    assert pcf < pf

    # Report renders, sees a complete campaign, and flags no problems.
    text, problems = render_report(tmp_path)
    assert problems == 0
    assert "push_cancel_flow" in text
    assert "link(0,1)@40" in text

    # Re-invoking resumes: all four cells are skipped, none re-run.
    again = run_campaign(spec, tmp_path)
    assert (again.skipped, again.executed) == (4, 0)


def test_report_strict_flags_incomplete_campaign(tmp_path):
    spec = load_spec("smoke")
    run_campaign(spec, tmp_path)
    results = tmp_path / "results.jsonl"
    lines = results.read_text().splitlines()
    results.write_text("\n".join(lines[:2]) + "\n")  # half the grid missing

    text, problems = render_report(tmp_path)
    assert problems == 2  # two cells unaccounted for
    assert "expected cells" in text


def test_summarize_separates_failures():
    records = {
        "a|t|f|s0": {
            "cell_id": "a|t|f|s0",
            "status": "ok",
            "algorithm": "a",
            "topology": "t",
            "fault": "f",
            "converged": True,
            "rounds_to_tolerance": 10,
            "final_error": 1e-9,
            "recovery_rounds": 3,
            "recovered": True,
            "mass_drift_floor": 0.0,
        },
        "a|t|f|s1": {
            "cell_id": "a|t|f|s1",
            "status": "failed",
            "attempts": 2,
            "error": "timeout after 1s",
        },
    }
    text, problems = summarize(records, expected_cells=2)
    assert problems == 1
    assert "Failures" in text
    assert "timeout after 1s" in text


def test_campaign_cli_runs_builtin(tmp_path, capsys):
    out = tmp_path / "camp"
    code = campaign_cli(["smoke", "--out", str(out), "--quiet"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "4 ok" in captured
    assert (out / "results.jsonl").exists()

    # Second invocation resumes off the checkpoint.
    code = campaign_cli(["smoke", "--out", str(out), "--quiet", "--no-report"])
    assert code == 0
    assert "4 skipped" in capsys.readouterr().out
