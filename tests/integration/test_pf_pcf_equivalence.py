"""Integration: the Sec. III-B equivalence claim.

"The PCF algorithm and the PF algorithm are equivalent and produce
(theoretically) identical results" — failure-free, under identical
communication schedules the two must coincide up to rounding, and in the
paper's Fig. 4/7 methodology they coincide *until the first failure*.
"""

import numpy as np
import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs, true_aggregate
from repro.algorithms.registry import instantiate
from repro.experiments.figures import equivalence_experiment, failure_experiment
from repro.metrics.history import ErrorHistory
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import UniformGossipSchedule
from repro.topology import hypercube, torus3d


def run_with_schedule(algorithm, topo, data, seed, rounds, fault_plan=None):
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    algs = instantiate(algorithm, topo, initial)
    truth = true_aggregate(AggregateKind.AVERAGE, list(data))
    history = ErrorHistory(truth)
    engine = SynchronousEngine(
        topo,
        algs,
        UniformGossipSchedule(topo.n, seed),
        fault_plan=fault_plan,
        observers=[history],
    )
    engine.run(rounds)
    return np.array([a.estimate() for a in algs]), history


@pytest.mark.parametrize("topo", [hypercube(5), torus3d(3)], ids=lambda t: t.name)
def test_identical_estimates_failure_free(topo):
    data = np.random.default_rng(11).uniform(size=topo.n)
    pf, _ = run_with_schedule("push_flow", topo, data, seed=21, rounds=120)
    pcf, _ = run_with_schedule("push_cancel_flow", topo, data, seed=21, rounds=120)
    # Theoretically identical; numerically equal to ~1e-11 relative.
    np.testing.assert_allclose(pf, pcf, rtol=1e-10, atol=1e-12)


def test_identical_until_failure_then_divergence():
    """The Fig. 4 vs Fig. 7 overlay: same curves before the failure round,
    radically different after."""
    fail_round = 60
    pf_hist, pf_report = failure_experiment(
        "push_flow", dimension=5, fail_round=fail_round, total_rounds=150
    )
    pcf_hist, pcf_report = failure_experiment(
        "push_cancel_flow", dimension=5, fail_round=fail_round, total_rounds=150
    )
    before_pf = np.array(pf_hist.max_errors[:fail_round])
    before_pcf = np.array(pcf_hist.max_errors[:fail_round])
    np.testing.assert_allclose(before_pf, before_pcf, rtol=1e-8)

    # PF falls back ~to the start; PCF keeps converging.
    assert pf_report.restart_fraction > 0.5
    assert pcf_report.restart_fraction < 0.5
    assert pcf_hist.final_max_error() < pf_hist.final_max_error()


def test_equivalence_experiment_harness():
    result = equivalence_experiment(dimension=4, rounds=80)
    label, value = result.rows[0][0], result.rows[0][1]
    assert "PF - PCF" in label
    assert value < 1e-9
