"""End-to-end telemetry: probes on real runs, capture sessions, report tool.

The headline test reproduces the paper's central diagnosis through the
telemetry layer alone: on the bus case study PF's converged flow
magnitudes grow linearly with n while the cancellation handshake keeps
PCF's bounded (Sec. II-B / Fig. 2), observed here by the
:class:`~repro.telemetry.probes.FlowMagnitudeProbe` rather than by
engine-internal inspection.
"""

import json

import numpy as np
import pytest

from repro.experiments import cli
from repro.experiments.workloads import bus_case_study_data
from repro.telemetry import FlowMagnitudeProbe, capture
from repro.telemetry.report import main as report_main, render_report
from repro.topology import standard
from repro.vectorized import VectorPushCancelFlow, VectorPushFlow


def _converged_max_flow(engine_cls, n, *, epsilon=1e-10, seed=7):
    """Run a bus reduction to convergence; return the probe's final max flow."""
    topo = standard.bus(n)
    data = bus_case_study_data(n)
    probe = FlowMagnitudeProbe(every=16)
    engine = engine_cls(topo, data, np.ones(n), seed=seed, observers=[probe])
    truth = float(np.mean(data))

    def stop(eng, _r):
        est = eng.estimates()[:, 0]
        if not np.all(np.isfinite(est)):
            return False
        return float(np.max(np.abs(est - truth) / abs(truth))) <= epsilon

    engine.run(200 * n * n, stop_when=stop, check_every=16)
    assert probe.records, "probe saw no flow samples"
    return probe.max_flow_series()[-1]


class TestFlowGrowthSignal:
    def test_pf_flows_grow_with_n_while_pcf_stay_bounded(self):
        sizes = (8, 48)
        pf = {n: _converged_max_flow(VectorPushFlow, n) for n in sizes}
        pcf = {n: _converged_max_flow(VectorPushCancelFlow, n) for n in sizes}
        # PF's converged flows track the unique tree flow (~n on the bus).
        assert pf[48] > 4 * pf[8]
        assert pf[48] > 40
        # PCF's stay at the scale of the estimates (average is 2 for all n).
        assert pcf[48] < 10
        assert pcf[48] < pf[48] / 4


class TestCaptureAndReport:
    @pytest.fixture(scope="class")
    def dump_dir(self, tmp_path_factory):
        target = tmp_path_factory.mktemp("telemetry") / "dump"
        with capture(target, trace_every=4):
            n = 16
            engine = VectorPushFlow(
                standard.bus(n), bus_case_study_data(n), np.ones(n), seed=3
            )
            engine.run(200)
        return target

    def test_dump_contents(self, dump_dir):
        for name in ("metrics.jsonl", "metrics.csv", "metrics.prom", "trace.jsonl"):
            assert (dump_dir / name).exists(), name
        prom = (dump_dir / "metrics.prom").read_text()
        assert 'repro_messages_sent_total{engine="vector"} 3200.0' in prom
        assert 'repro_rounds_total{engine="vector"} 200.0' in prom
        trace = [
            json.loads(line)
            for line in (dump_dir / "trace.jsonl").read_text().splitlines()
        ]
        assert {"round", "flow", "mass"} <= {r["type"] for r in trace}

    def test_report_renders_all_sections(self, dump_dir):
        text = render_report(dump_dir)
        assert "Phase profile" in text
        assert "repro_rounds_total" in text
        assert "VectorPushFlow" in text
        assert "Flow-magnitude trajectory" in text

    def test_report_cli_exit_codes(self, dump_dir, tmp_path, capsys):
        assert report_main([str(dump_dir)]) == 0
        assert "Telemetry report" in capsys.readouterr().out
        assert report_main([str(tmp_path / "missing")]) == 1
        assert "missing" in capsys.readouterr().err


class TestExperimentsCliTelemetry:
    def test_equivalence_experiment_with_telemetry_flag(self, tmp_path, capsys):
        target = tmp_path / "dump"
        code = cli.main(
            ["equivalence", "--telemetry", str(target), "--telemetry-every", "16"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry dumped to" in out
        assert (target / "metrics.prom").exists()
        assert (target / "trace.jsonl").exists()
        # The dump is summarizable end-to-end.
        assert report_main([str(target)]) == 0
