"""Integration: facade coverage for the hardened variant + async FIFO."""

import numpy as np

from repro import run_reduction
from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.algorithms.registry import instantiate
from repro.simulation.async_engine import AsynchronousEngine
from repro.topology import hypercube, ring


class TestFacadeHardened:
    def test_auto_backend_uses_vector(self):
        topo = hypercube(5)
        data = np.random.default_rng(0).uniform(size=topo.n)
        result = run_reduction(
            topo, data, algorithm="push_cancel_flow_hardened", epsilon=1e-14
        )
        assert result.backend == "vector"
        assert result.converged

    def test_object_backend_agrees_on_fixed_point(self):
        topo = hypercube(4)
        data = np.random.default_rng(1).uniform(size=topo.n)
        vec = run_reduction(
            topo, data, algorithm="push_cancel_flow_hardened",
            epsilon=1e-13, backend="vector",
        )
        obj = run_reduction(
            topo, data, algorithm="push_cancel_flow_hardened",
            epsilon=1e-13, backend="object",
        )
        assert vec.converged and obj.converged
        assert vec.truth == obj.truth

    def test_robust_variant_via_registry(self):
        topo = hypercube(4)
        data = np.random.default_rng(2).uniform(size=topo.n)
        result = run_reduction(
            topo,
            data,
            algorithm="push_cancel_flow_hardened_robust",
            epsilon=1e-12,
            backend="object",
            max_rounds=2000,
        )
        assert result.converged


class TestAsyncFIFO:
    def test_per_edge_fifo_ordering(self):
        """The async engine's channels must deliver per-directed-edge FIFO
        even under jittered latency (the transport contract the flow
        handshakes rely on). Each outgoing message is tagged with a
        per-channel sequence number at send time; receivers must observe
        strictly increasing sequences per channel."""
        topo = ring(4)
        initial = initial_mass_pairs(AggregateKind.AVERAGE, [1.0] * 4)
        algs = instantiate("push_sum", topo, initial)

        send_seq = {}
        sent_tags = {}  # id(payload) -> (channel, seq)

        def make_send(alg, orig):
            def send(neighbor):
                payload = orig(neighbor)
                channel = (alg.node_id, neighbor)
                send_seq[channel] = send_seq.get(channel, 0) + 1
                sent_tags[id(payload)] = (channel, send_seq[channel])
                return payload

            return send

        received = []

        def make_recv(alg, orig):
            def recv(sender, payload):
                tag = sent_tags.get(id(payload))
                if tag is not None:
                    received.append(tag)
                orig(sender, payload)

            return recv

        for alg in algs:
            alg.make_message = make_send(alg, alg.make_message)
            alg.on_receive = make_recv(alg, alg.on_receive)

        engine = AsynchronousEngine(
            topo, algs, seed=3, latency=0.5, latency_jitter=1.0
        )
        engine.run(60.0)
        assert len(received) > 50
        last_seen = {}
        for channel, seq in received:
            assert seq > last_seen.get(channel, 0), (
                f"channel {channel} delivered seq {seq} after "
                f"{last_seen.get(channel)}"
            )
            last_seen[channel] = seq
