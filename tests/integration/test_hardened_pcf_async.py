"""Integration: the hardened PCF variant under asynchrony and faults.

These tests are the companion to the two documented Fig.-5 limitations:
where standard PCF deadlocks/drains under message latency, the hardened
variant keeps converging; where standard PCF freezes in-flight corruption,
the hardened cancellation closes exactly for every loss/latency pattern.
"""

import numpy as np
import pytest

from repro import AggregateKind, run_reduction
from repro.algorithms.aggregates import initial_mass_pairs, true_aggregate
from repro.algorithms.registry import instantiate
from repro.faults.events import FaultPlan, LinkFailure
from repro.faults.message_loss import IidMessageLoss
from repro.metrics.convergence import fallback_report
from repro.metrics.errors import max_local_error
from repro.metrics.history import ErrorHistory
from repro.simulation.async_engine import AsynchronousEngine
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import UniformGossipSchedule
from repro.topology import hypercube, torus3d


def build_async(topology, algorithm, data, **kwargs):
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    algs = instantiate(algorithm, topology, initial)
    return AsynchronousEngine(topology, algs, **kwargs), algs


class TestAsyncWithLatency:
    def test_converges_where_standard_pcf_drains(self):
        # The exact configuration of the documented Fig. 5 deadlock test.
        topo = hypercube(4)
        data = list(np.random.default_rng(5).uniform(size=topo.n))
        engine, algs = build_async(
            topo,
            "push_cancel_flow_hardened",
            data,
            seed=6,
            latency=0.2,
            latency_jitter=0.3,
        )
        engine.run(600.0)
        truth = true_aggregate(AggregateKind.AVERAGE, data)
        assert max_local_error(engine.estimates(), truth) < 1e-9
        # No mass drain: total weight stays ~n (minus in-flight).
        total_weight = sum(a.estimate_pair().weight for a in algs)
        assert total_weight > 0.5 * topo.n

    def test_latency_plus_loss(self):
        topo = hypercube(4)
        data = list(np.random.default_rng(8).uniform(size=topo.n))
        engine, _ = build_async(
            topo,
            "push_cancel_flow_hardened",
            data,
            seed=9,
            latency=0.3,
            latency_jitter=0.2,
            message_fault=IidMessageLoss(0.2, seed=2),
        )
        engine.run(900.0)
        truth = true_aggregate(AggregateKind.AVERAGE, data)
        assert max_local_error(engine.estimates(), truth) < 1e-8

    def test_latency_plus_link_failure(self):
        topo = hypercube(4)
        data = list(np.random.default_rng(10).uniform(size=topo.n))
        plan = FaultPlan(link_failures=[LinkFailure(round=40, u=0, v=1)])
        engine, algs = build_async(
            topo,
            "push_cancel_flow_hardened",
            data,
            seed=11,
            latency=0.2,
            latency_jitter=0.2,
            fault_plan=plan,
        )
        engine.run(800.0)
        estimates = engine.estimates()
        # Tight consensus, bounded offset (in-flight mass lost at exclusion).
        assert max(estimates) - min(estimates) < 1e-9
        truth = true_aggregate(AggregateKind.AVERAGE, data)
        assert max_local_error(estimates, truth) < 1e-4


class TestSynchronousParityWithPCF:
    @pytest.mark.parametrize("topo", [hypercube(5), torus3d(3)], ids=lambda t: t.name)
    def test_same_fixed_point_as_pf(self, topo):
        # Unlike Fig-5 PCF, the hardened variant is not trajectory-
        # identical to PF (era-boundary reference refreshes adopt crossed
        # updates), but both converge to the exact same aggregate with
        # comparable accuracy under an identical schedule.
        data = np.random.default_rng(11).uniform(size=topo.n)
        truth = true_aggregate(AggregateKind.AVERAGE, list(data))
        initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
        finals = {}
        for alg in ("push_flow", "push_cancel_flow_hardened"):
            algs = instantiate(alg, topo, initial)
            engine = SynchronousEngine(
                topo, algs, UniformGossipSchedule(topo.n, 21)
            )
            engine.run(400)
            finals[alg] = max_local_error(engine.estimates(), truth)
        assert finals["push_cancel_flow_hardened"] < 1e-11
        assert finals["push_flow"] < 1e-11

    def test_reaches_target_accuracy(self):
        topo = hypercube(6)
        data = np.random.default_rng(0).uniform(size=topo.n)
        result = run_reduction(
            topo,
            data,
            algorithm="push_cancel_flow_hardened",
            epsilon=1e-15,
            backend="object",
            max_rounds=1500,
        )
        assert result.converged

    def test_no_fallback_on_link_failure(self):
        topo = hypercube(5)
        data = np.random.default_rng(0).uniform(size=topo.n)
        truth = true_aggregate(AggregateKind.AVERAGE, list(data))
        initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
        algs = instantiate("push_cancel_flow_hardened", topo, initial)
        history = ErrorHistory(truth)
        engine = SynchronousEngine(
            topo,
            algs,
            UniformGossipSchedule(topo.n, 5),
            fault_plan=FaultPlan(link_failures=[LinkFailure(round=80, u=0, v=1)]),
            observers=[history],
        )
        engine.run(250)
        report = fallback_report(history.max_errors, 80)
        assert report.restart_fraction < 0.5
        assert report.recovery_rounds is not None and report.recovery_rounds <= 15


class TestExactMassClosure:
    def test_loss_never_leaves_residual(self):
        # Standard PCF can freeze asymmetric values under unlucky timing;
        # the hardened cancellation closes exactly — after the loss episode
        # the run reaches full accuracy, repeatedly, for many seeds.
        topo = hypercube(4)
        for seed in range(5):
            data = np.random.default_rng(seed).uniform(size=topo.n)
            result = run_reduction(
                topo,
                data,
                algorithm="push_cancel_flow_hardened",
                epsilon=1e-12,
                backend="object",
                message_fault=IidMessageLoss(0.3, seed=seed),
                max_rounds=3000,
            )
            assert result.converged, f"seed {seed}: {result.max_error:.3e}"
