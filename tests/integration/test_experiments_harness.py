"""Integration: the experiment harness regenerates the paper's shapes.

Each test runs a (scaled-down) version of one figure's experiment and
asserts the qualitative claim the figure makes — who wins, in which
direction the curves move. These are the repository's reproduction
regression tests.
"""


from repro.experiments.figures import (
    ablation_message_loss,
    ablation_pf_variants,
    ablation_state_bit_flips,
    accuracy_sweep,
    fig2_bus_flows,
    fig4_pf_failure,
    fig7_pcf_failure,
    fig8_qr,
    scaling_rounds,
)
from repro.algorithms.aggregates import AggregateKind


def rows_by(result, **filters):
    index = {h: i for i, h in enumerate(result.headers)}
    selected = []
    for row in result.rows:
        if all(row[index[k]] == v for k, v in filters.items()):
            selected.append({h: row[index[h]] for h in index})
    return selected


class TestFig2:
    def test_pf_flows_grow_pcf_flows_do_not(self):
        result = fig2_bus_flows(sizes=(8, 16, 32), epsilon=1e-11)
        pf = rows_by(result, algorithm="push_flow")
        pcf = rows_by(result, algorithm="push_cancel_flow_hardened")
        # PF's max flow tracks ~n (the unique tree flow has f_max = n - 1).
        for row in pf:
            assert row["max_flow_magnitude"] > 0.5 * (row["n"] - 1)
        # PF flow magnitude grows ~linearly with n; the hardened-PCF
        # cancellation keeps flows well below the n-scale tree flow.
        assert pf[-1]["max_flow_magnitude"] > 2.5 * pf[0]["max_flow_magnitude"]
        assert pcf[-1]["max_flow_magnitude"] < 0.5 * pf[-1]["max_flow_magnitude"]
        # Both still converge to the average (2.0) at these sizes.
        for row in pf + pcf:
            assert row["max_rel_error"] < 1e-10


class TestFig3AndFig6:
    def test_pf_degrades_with_scale_pcf_does_not(self):
        kwargs = dict(
            scale="small",
            kinds=(AggregateKind.AVERAGE,),
            seeds=(0,),
        )
        pf = accuracy_sweep("push_flow", **kwargs)
        pcf = accuracy_sweep("push_cancel_flow", **kwargs)

        def errors_for(result, family):
            return [
                row["mean_max_rel_error"]
                for row in rows_by(result, topology=family)
            ]

        for family in ("hypercube", "torus3d"):
            pf_errors = errors_for(pf, family)
            pcf_errors = errors_for(pcf, family)
            # PF's achievable accuracy degrades by >1 order of magnitude
            # from the smallest to the largest size...
            assert pf_errors[-1] > 10 * pf_errors[0]
            # ... and is much worse than PCF at the largest size (Fig. 3 vs
            # Fig. 6), while PCF stays within ~10x of machine precision.
            assert pf_errors[-1] > 3 * pcf_errors[-1]
            assert pcf_errors[-1] < 1e-14


class TestFig4AndFig7:
    def test_restart_vs_no_restart(self):
        pf = fig4_pf_failure(fail_rounds=(75,))
        pcf = fig7_pcf_failure(fail_rounds=(75,))
        index = {h: i for i, h in enumerate(pf.headers)}
        pf_row = pf.rows[0]
        pcf_row = pcf.rows[0]
        assert pf_row[index["restart_fraction"]] > 0.6
        assert pcf_row[index["restart_fraction"]] < 0.5
        assert pf_row[index["jump_factor"]] > 10 * pcf_row[index["jump_factor"]]
        # PCF recovers within a handful of rounds; PF needs tens.
        assert pcf_row[index["recovery_rounds"]] <= 10
        assert pf_row[index["recovery_rounds"]] is None or (
            pf_row[index["recovery_rounds"]] > 30
        )
        # Error curves are in the series payload for plotting/inspection.
        assert len(pf.series) == 1
        assert len(next(iter(pf.series.values()))) == 200

    def test_late_failure_contrast(self):
        pf = fig4_pf_failure(fail_rounds=(175,))
        pcf = fig7_pcf_failure(fail_rounds=(175,))
        index = {h: i for i, h in enumerate(pf.headers)}
        # Handled at round 175 of 200: PF cannot recover in the remaining
        # 25 rounds; PCF's final error is orders of magnitude better.
        assert pf.rows[0][index["final_error"]] > 1e3 * pcf.rows[0][
            index["final_error"]
        ]


class TestFig8:
    def test_qr_contrast(self):
        result = fig8_qr(scale="small", runs=2, m=8)
        pf = rows_by(result, algorithm="push_flow")
        pcf = rows_by(result, algorithm="push_cancel_flow")
        # dmGS(PCF) stays at reduction-level accuracy at every size...
        for row in pcf:
            assert row["mean_fact_error"] < 1e-13
        # ... and beats dmGS(PF) at the largest tested size.
        assert pf[-1]["mean_fact_error"] > 2 * pcf[-1]["mean_fact_error"]


class TestAblations:
    def test_pf_variant_ablation_runs(self):
        result = ablation_pf_variants(dims=(3, 5), seeds=(0,))
        assert len(result.rows) == 4
        index = {h: i for i, h in enumerate(result.headers)}
        for row in result.rows:
            assert row[index["mean_max_rel_error"]] < 1e-10

    def test_state_bit_flip_ablation_separates_variants(self):
        result = ablation_state_bit_flips(dimension=4, total_rounds=500)
        index = {h: i for i, h in enumerate(result.headers)}
        outcome = {row[0]: row[index["recovered"]] for row in result.rows}
        # The recompute-from-flows PF variant always heals memory flips.
        assert outcome["push_flow"] is True

    def test_message_loss_ablation(self):
        result = ablation_message_loss(
            dimension=4, loss_rates=(0.0, 0.2), total_rounds=500
        )
        index = {h: i for i, h in enumerate(result.headers)}
        rows = {(r[0], r[index["loss_rate"]]): r[index["final_max_rel_error"]]
                for r in result.rows}
        # Push-sum is destroyed by loss; PCF is not.
        assert rows[("push_sum", 0.2)] > 1e-6
        assert rows[("push_cancel_flow", 0.2)] < 1e-10

    def test_scaling_rounds_flat_per_log(self):
        result = scaling_rounds(dims=(3, 6), seeds=(0,))
        index = {h: i for i, h in enumerate(result.headers)}
        per_log = [row[index["rounds_per_log2n"]] for row in result.rows]
        assert max(per_log) / min(per_log) < 2.5
