"""Integration: permanent-failure handling end to end (Sec. II-C / III).

The paper's headline fault-tolerance claims, as executable assertions:
PF's failure handling throws convergence back near the start (Fig. 4);
PCF handles the identical failure with negligible fallback (Fig. 7);
both still converge afterwards; node failures behave like the failure of
all incident links.
"""

import numpy as np
import pytest

from repro import AggregateKind, run_reduction
from repro.algorithms.aggregates import (
    initial_mass_pairs,
    true_aggregate,
)
from repro.algorithms.registry import instantiate
from repro.faults.events import FaultPlan, LinkFailure, NodeFailure
from repro.metrics.convergence import fallback_report
from repro.metrics.errors import max_local_error
from repro.metrics.history import ErrorHistory
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import UniformGossipSchedule
from repro.topology import hypercube


def run_failure(algorithm, plan, *, rounds=250, dim=5, data_seed=0, sched_seed=5):
    topo = hypercube(dim)
    data = np.random.default_rng(data_seed).uniform(size=topo.n)
    truth = true_aggregate(AggregateKind.AVERAGE, list(data))
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    algs = instantiate(algorithm, topo, initial)
    history = ErrorHistory(truth)
    engine = SynchronousEngine(
        topo,
        algs,
        UniformGossipSchedule(topo.n, sched_seed),
        fault_plan=plan,
        observers=[history],
    )
    engine.run(rounds)
    return engine, history, truth


class TestLinkFailure:
    def test_pf_falls_back_pcf_does_not(self):
        plan = FaultPlan(link_failures=[LinkFailure(round=80, u=0, v=1)])
        _, pf_hist, _ = run_failure("push_flow", plan)
        _, pcf_hist, _ = run_failure("push_cancel_flow", plan)
        pf = fallback_report(pf_hist.max_errors, 80)
        pcf = fallback_report(pcf_hist.max_errors, 80)
        # PF jumps orders of magnitude further back than PCF...
        assert pf.jump_factor > 100 * max(pcf.jump_factor, 1.0)
        # ... nearly to the start (the Fig. 4 "restart") ...
        assert pf.restart_fraction > 0.5
        # ... while PCF's perturbation stays small and heals within a few
        # rounds (Fig. 7): the flows' value/weight ratio already tracks the
        # aggregate, so excluding them barely moves the estimates.
        assert pcf.restart_fraction < 0.5
        assert pcf.recovery_rounds is not None and pcf.recovery_rounds <= 15
        assert pf.recovery_rounds is None or pf.recovery_rounds > 40

    @pytest.mark.parametrize(
        "algorithm", ["push_flow", "push_cancel_flow", "push_cancel_flow_robust"]
    )
    def test_converges_after_link_failure(self, algorithm):
        plan = FaultPlan(link_failures=[LinkFailure(round=40, u=0, v=1)])
        engine, history, truth = run_failure(algorithm, plan, rounds=500)
        assert max_local_error(engine.estimates(), truth) < 1e-9

    def test_multiple_link_failures(self):
        plan = FaultPlan(
            link_failures=[
                LinkFailure(round=30, u=0, v=1),
                LinkFailure(round=60, u=2, v=3),
                LinkFailure(round=90, u=8, v=9),
            ]
        )
        engine, history, truth = run_failure("push_cancel_flow", plan, rounds=500)
        # Excluding a link whose two flow copies disagree mid-flight loses
        # the in-flight delta, so the surviving consensus can sit a tiny,
        # bounded offset away from the exact pre-failure aggregate (true
        # for PF and PCF alike; the paper's experiments show the same
        # bounded post-failure level). Nodes must still agree tightly.
        estimates = engine.estimates()
        spread = (max(estimates) - min(estimates)) / abs(truth)
        assert spread < 1e-11
        assert max_local_error(estimates, truth) < 1e-6

    def test_detection_delay_behaves_like_message_loss(self):
        # Between the physical failure and its handling, messages on the
        # edge silently vanish; flow algorithms must shrug this off.
        plan = FaultPlan(
            link_failures=[LinkFailure(round=30, u=0, v=1, detection_delay=50)]
        )
        engine, history, truth = run_failure("push_cancel_flow", plan, rounds=500)
        assert max_local_error(engine.estimates(), truth) < 1e-9


class TestNodeFailure:
    @pytest.mark.parametrize("algorithm", ["push_flow", "push_cancel_flow"])
    def test_survivors_converge_to_survivor_aggregate(self, algorithm):
        # After a fail-stop node failure, the dead node's initial mass is
        # gone; survivors converge to an aggregate of the *remaining* data
        # perturbed by whatever mass the dead node absorbed — the key
        # property is that survivors re-reach consensus at all.
        topo = hypercube(4)
        data = np.random.default_rng(3).uniform(1.0, 2.0, size=topo.n)
        plan = FaultPlan(node_failures=[NodeFailure(round=50, node=5)])
        initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
        algs = instantiate(algorithm, topo, initial)
        engine = SynchronousEngine(
            topo,
            algs,
            UniformGossipSchedule(topo.n, 9),
            fault_plan=plan,
        )
        engine.run(800)
        survivors = [algs[i].estimate() for i in engine.live_nodes()]
        # Consensus among survivors:
        assert max(survivors) - min(survivors) < 1e-9 * abs(np.mean(survivors))
        # ... on a value within the data range (no mass explosion):
        assert 1.0 <= np.mean(survivors) <= 2.0

    def test_early_node_failure(self):
        topo = hypercube(4)
        data = np.random.default_rng(4).uniform(1.0, 2.0, size=topo.n)
        plan = FaultPlan(node_failures=[NodeFailure(round=0, node=0)])
        initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
        algs = instantiate("push_cancel_flow", topo, initial)
        engine = SynchronousEngine(
            topo, algs, UniformGossipSchedule(topo.n, 2), fault_plan=plan
        )
        engine.run(600)
        survivors = [algs[i].estimate() for i in engine.live_nodes()]
        spread = max(survivors) - min(survivors)
        assert spread < 1e-10
        # With the failure at round 0 the survivors' aggregate is exactly
        # the survivors' average.
        expected = float(np.mean(np.delete(np.asarray(data), 0)))
        assert np.mean(survivors) == pytest.approx(expected, rel=1e-9)


class TestFacadeWithFailures:
    def test_run_reduction_survives_failure_plan(self):
        topo = hypercube(5)
        data = np.random.default_rng(1).uniform(size=topo.n)
        plan = FaultPlan(link_failures=[LinkFailure(round=50, u=0, v=1)])
        result = run_reduction(
            topo,
            data,
            algorithm="push_cancel_flow",
            fault_plan=plan,
            epsilon=1e-12,
            max_rounds=2000,
        )
        assert result.converged
        # The oracle stop must not fire before the failure was handled.
        assert result.rounds > 50
