"""Integration: object engine vs vectorized engine bit-for-bit parity.

The vectorized engines exist purely for speed; under identical scripted
schedules they must produce *exactly* the same floating-point states as the
readable object engine for every protocol.
"""

import numpy as np
import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.simulation.schedule import UniformGossipSchedule
from repro.topology import erdos_renyi, hypercube, ring, star, torus3d
from repro.vectorized.parity import (
    compare_engines,
    materialize_schedule,
)

TOPOLOGIES = [
    ring(8),
    star(8),
    hypercube(3),
    torus3d(2),
    erdos_renyi(10, 0.5, seed=1),
]


def scripted(topo, rounds, seed):
    return materialize_schedule(UniformGossipSchedule(topo.n, seed), topo, rounds)


@pytest.mark.parametrize("algorithm", ["push_sum", "push_flow", "push_cancel_flow"])
@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
def test_bitwise_parity(algorithm, topo):
    rng = np.random.default_rng(5)
    data = rng.uniform(size=topo.n)
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    targets = scripted(topo, 60, seed=3)
    obj, vec = compare_engines(algorithm, topo, initial, targets)
    np.testing.assert_array_equal(obj, vec)


@pytest.mark.parametrize("algorithm", ["push_sum", "push_flow", "push_cancel_flow"])
def test_bitwise_parity_sum_aggregate(algorithm):
    topo = hypercube(4)
    rng = np.random.default_rng(6)
    data = rng.uniform(size=topo.n)
    initial = initial_mass_pairs(AggregateKind.SUM, list(data))
    targets = scripted(topo, 80, seed=4)
    obj, vec = compare_engines(algorithm, topo, initial, targets)
    np.testing.assert_array_equal(obj, vec)


def test_bitwise_parity_vector_payloads():
    topo = hypercube(3)
    rng = np.random.default_rng(7)
    data = [rng.uniform(size=3) for _ in range(topo.n)]
    initial = initial_mass_pairs(AggregateKind.AVERAGE, data)
    targets = scripted(topo, 50, seed=5)
    obj, vec = compare_engines("push_cancel_flow", topo, initial, targets)
    np.testing.assert_array_equal(obj, vec)


def test_parity_with_silent_nodes():
    # Schedules may leave nodes silent in some rounds.
    topo = ring(6)
    targets = scripted(topo, 40, seed=8)
    targets[::3, 0] = -1  # node 0 silent every third round
    targets[1::4, 3] = -1
    rng = np.random.default_rng(9)
    initial = initial_mass_pairs(
        AggregateKind.AVERAGE, list(rng.uniform(size=topo.n))
    )
    obj, vec = compare_engines("push_cancel_flow", topo, initial, targets)
    np.testing.assert_array_equal(obj, vec)


def test_parity_long_run_pcf():
    # Long enough to go through many cancel/swap/adopt cycles.
    topo = hypercube(4)
    rng = np.random.default_rng(10)
    initial = initial_mass_pairs(
        AggregateKind.AVERAGE, list(rng.uniform(size=topo.n))
    )
    targets = scripted(topo, 300, seed=11)
    obj, vec = compare_engines("push_cancel_flow", topo, initial, targets)
    np.testing.assert_array_equal(obj, vec)
