"""Integration: the Fig. 5 message-crossing deadlock finding (F1).

Pins the reproduction's strongest negative result: the paper's Fig. 5
handshake, executed under the synchronous round model it was designed for,
deadlocks and drains the computation's mass on low-degree topologies where
the two endpoints of an edge frequently gossip with each other in the same
round (crossed messages). The hardened variant is immune.
"""

import numpy as np

from repro.experiments.figures import finding_crossing_deadlock
from repro.experiments.workloads import bus_case_study_data
from repro.topology import bus
from repro.vectorized.engines import VectorPushCancelFlow
from repro.vectorized.hardened import VectorPushCancelFlowHardened


def test_fig5_pcf_drains_on_bus():
    n = 64
    topo = bus(n)
    data = bus_case_study_data(n)
    engine = VectorPushCancelFlow(topo, data, np.ones(n), seed=7)
    engine.run(8000)
    _, weights = engine.estimate_pairs()
    # Healthy mass is ~n; the deadlocked run has lost most of it.
    assert weights.sum() < 0.5 * n


def test_hardened_pcf_immune_on_bus():
    n = 64
    topo = bus(n)
    data = bus_case_study_data(n)
    engine = VectorPushCancelFlowHardened(topo, data, np.ones(n), seed=7)
    engine.run(8000)
    _, weights = engine.estimate_pairs()
    est = engine.estimates()[:, 0]
    assert np.all(np.isfinite(est))
    assert weights.sum() > 0.5 * n


def test_finding_experiment_table():
    result = finding_crossing_deadlock(n=64, rounds=12000)
    index = {h: i for i, h in enumerate(result.headers)}
    by_alg = {row[0]: row for row in result.rows}
    fig5 = by_alg["push_cancel_flow"]
    hardened = by_alg["push_cancel_flow_hardened"]
    assert fig5[index["total_weight_mass"]] < hardened[index["total_weight_mass"]]
    assert hardened[index["estimates_finite"]] is True
