"""End-to-end reduction service: daemon + HTTP plane + demo CLI.

Exercises the full serve-reductions stack the way CI's service-smoke
job does, but at a smaller scale: a live daemon behind a
:class:`MetricsServer`, scraped over real HTTP while mixed-tenant jobs
flow; then the packaged ``--demo`` self-check (concurrent tenants,
bit-parity verification against the serial service, epoch restart,
strict /metrics parse, clean shutdown) through the public CLI.
"""

import json
import multiprocessing
import urllib.error
import urllib.request

from repro.experiments.cli import main as experiments_main
from repro.service.cli import main as service_main
from repro.service.daemon import ReductionDaemon
from repro.service.http import DaemonSource
from repro.telemetry import parse_prometheus_text
from repro.telemetry.server import MetricsServer
from repro.topology import ring


def get(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read()


class TestDaemonHTTPPlane:
    def test_endpoints_reflect_live_jobs(self):
        topo = ring(8)
        with ReductionDaemon(workers=0, linger_s=0.0) as daemon:
            with MetricsServer(DaemonSource(daemon)) as server:
                ids = [
                    daemon.submit(
                        tenant=f"t{j % 2}",
                        algorithm="push_sum",
                        topology=topo,
                        partials=[float(i + j) for i in range(topo.n)],
                        epsilon=1e-10,
                        seed=j,
                    )
                    for j in range(4)
                ]
                for job_id in ids:
                    daemon.result(job_id, timeout=30)

                status, body = get(server.url + "/healthz")
                assert status == 200
                health = json.loads(body)
                assert health["status"] == "ok"
                assert health["service"] == "reduction-daemon"
                assert health["jobs_completed"] == 4
                assert health["queue_depth"] == 0

                status, body = get(server.url + "/jobs")
                jobs = json.loads(body)["jobs"]
                assert len(jobs) == 4
                assert all(j["state"] == "done" for j in jobs)
                assert {j["tenant"] for j in jobs} == {"t0", "t1"}

                status, body = get(server.url + "/metrics")
                assert status == 200
                samples = parse_prometheus_text(body.decode())
                by_name = {}
                for name, labels, value in samples:
                    by_name.setdefault(name, []).append((labels, value))
                assert (
                    sum(
                        v
                        for _l, v in by_name["daemon_jobs_submitted_total"]
                    )
                    == 4.0
                )
                assert (
                    sum(
                        v
                        for _l, v in by_name[
                            "daemon_job_latency_seconds_count"
                        ]
                    )
                    == 4.0
                )
                assert "daemon_batch_jobs_bucket" in by_name

                # Campaign-only endpoints don't exist on this source.
                try:
                    urllib.request.urlopen(
                        server.url + "/progress", timeout=10
                    )
                except urllib.error.HTTPError as exc:
                    assert exc.code == 404
                else:  # pragma: no cover - would mean a dispatch bug
                    raise AssertionError("/progress should 404")


class TestServeReductionsCLI:
    def test_demo_self_check_passes(self, capsys):
        # The packaged acceptance demo at reduced scale: concurrent
        # tenants, parity vs the serial service, epoch restart, strict
        # metrics parse and clean shutdown — exit 0 means all passed.
        rc = experiments_main(
            [
                "serve-reductions",
                "--demo",
                "--demo-jobs",
                "12",
                "--demo-tenants",
                "3",
                "--workers",
                "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "parity" in out
        assert "no leaked" in out
        assert multiprocessing.active_children() == []

    def test_demo_with_worker_processes(self, capsys):
        rc = service_main(
            [
                "--demo",
                "--demo-jobs",
                "8",
                "--demo-tenants",
                "2",
                "--workers",
                "1",
                "--quiet",
            ]
        )
        assert rc == 0
        assert multiprocessing.active_children() == []
