"""Integration: soft errors — message loss and bit flips (Sec. II-A).

Executable versions of the paper's soft-error claims: flow-based
algorithms recover from lost/corrupted messages "without even detecting or
correcting them explicitly"; push-sum is permanently corrupted by a single
lost message.
"""

import numpy as np
import pytest

from repro.algorithms.aggregates import (
    AggregateKind,
    initial_mass_pairs,
    true_aggregate,
)
from repro.algorithms.registry import instantiate
from repro.faults.bit_flip import BitFlipFault
from repro.faults.base import CompositeFault, WindowedFault
from repro.faults.message_loss import BurstMessageLoss, IidMessageLoss
from repro.faults.state_flip import StateBitFlipInjector
from repro.metrics.errors import max_local_error
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import UniformGossipSchedule
from repro.topology import hypercube


def run_with_fault(algorithm, fault, *, rounds=600, dim=4, observers=()):
    topo = hypercube(dim)
    data = np.random.default_rng(0).uniform(size=topo.n)
    truth = true_aggregate(AggregateKind.AVERAGE, list(data))
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    algs = instantiate(algorithm, topo, initial)
    engine = SynchronousEngine(
        topo,
        algs,
        UniformGossipSchedule(topo.n, 13),
        message_fault=fault,
        observers=list(observers),
    )
    engine.run(rounds)
    return max_local_error(engine.estimates(), truth), engine


class TestMessageLoss:
    @pytest.mark.parametrize(
        "algorithm",
        ["push_flow", "push_flow_incremental", "push_cancel_flow",
         "push_cancel_flow_robust"],
    )
    @pytest.mark.parametrize("loss", [0.05, 0.3])
    def test_flow_algorithms_self_heal(self, algorithm, loss):
        error, _ = run_with_fault(algorithm, IidMessageLoss(loss, seed=1))
        assert error < 1e-10

    def test_push_sum_corrupted_by_loss(self):
        error, _ = run_with_fault("push_sum", IidMessageLoss(0.05, seed=1))
        # Mass left the system; the error floor is macroscopic.
        assert error > 1e-4

    def test_burst_loss(self):
        error, _ = run_with_fault(
            "push_cancel_flow", BurstMessageLoss(0.05, 0.2, seed=2)
        )
        assert error < 1e-10


class TestBitFlips:
    def test_mantissa_flips_heal_in_pf(self):
        # Mantissa flips perturb a value by at most 2x: PF's repair
        # mechanism absorbs them as transient mass perturbations, and once
        # the fault episode ends the run re-converges to full accuracy —
        # the Sec. II-A claim, verbatim.
        fault = WindowedFault(
            BitFlipFault(0.05, seed=3, max_bit=51), end_round=300
        )
        error, _ = run_with_fault("push_flow", fault, rounds=800)
        assert error < 1e-10

    @pytest.mark.parametrize(
        "algorithm", ["push_cancel_flow", "push_cancel_flow_robust"]
    )
    def test_pcf_cancellation_can_freeze_corruption(self, algorithm):
        # REPRODUCTION FINDING (the paper's "all or almost all fault
        # tolerance properties" hedge, made concrete): PCF's cancellation
        # handshake zeroes a node's passive-flow copy on the *peer's*
        # say-so (the swap branch) without re-verifying the value. If an
        # in-flight corruption slipped into that copy after the peer's
        # conservation check, the two endpoints freeze values that do NOT
        # sum to zero — a permanent mass error PF cannot suffer (its flows
        # are always repairable). Under a sustained corruption episode PCF
        # therefore ends with a macroscopic residual where PF fully heals.
        fault = WindowedFault(
            BitFlipFault(0.05, seed=3, max_bit=51), end_round=300
        )
        error, _ = run_with_fault(algorithm, fault, rounds=800)
        assert 1e-12 < error < 1.0  # elevated, but not divergent

    def test_push_sum_corrupted_by_flips(self):
        error, _ = run_with_fault(
            "push_sum", BitFlipFault(0.02, seed=3, max_bit=51)
        )
        assert error > 1e-8

    def test_combined_loss_and_flips_pf(self):
        fault = CompositeFault(
            [
                IidMessageLoss(0.1, seed=4),
                WindowedFault(
                    BitFlipFault(0.01, seed=5, max_bit=51), end_round=400
                ),
            ]
        )
        error, _ = run_with_fault("push_flow", fault, rounds=900)
        assert error < 1e-10

    def test_control_field_flips_bounded_damage(self):
        # Flipping PCF's c/r control integers in flight: the era guards
        # usually make the message a no-op, but a corrupted counter can
        # also trigger a bogus swap-zero (same freeze hazard as above), so
        # the honest guarantee is bounded damage, not perfect healing.
        fault = WindowedFault(
            BitFlipFault(0.02, seed=6, corrupt_control=True, max_bit=51),
            end_round=400,
        )
        error, _ = run_with_fault("push_cancel_flow", fault, rounds=900)
        assert error < 1.0

    def test_exponent_flips_permanently_degrade_accuracy(self):
        # REPRODUCTION FINDING: a flipped exponent/sign bit can rescale a
        # flow value by up to 2^±1023. The corrupted value becomes
        # legitimate flow state (mass stays conserved so the consensus
        # re-converges), but any protocol that *retains* the huge magnitude
        # — PF keeps it in the flow forever; PCF may freeze it into phi —
        # is left with an accuracy floor of ~eps * magnitude. Full-range
        # flips therefore bound achievable accuracy, for every variant.
        error_pf, _ = run_with_fault(
            "push_flow", BitFlipFault(0.02, seed=3, max_bit=63), rounds=800
        )
        assert error_pf > 1e-12


class TestMemorySoftErrors:
    def test_pf_recompute_heals_state_flips(self):
        injector = StateBitFlipInjector([100, 150], seed=7, max_bit=51)
        error, _ = run_with_fault(
            "push_flow", IidMessageLoss(0.0, seed=0), rounds=700,
            observers=[injector],
        )
        assert len(injector.injections) == 2
        assert error < 1e-9

    def test_pcf_robust_mostly_heals_state_flips(self):
        # The robust variant re-reads its flows, so a corrupted stored flow
        # is healed by the next exchange — unless a cancellation freezes it
        # first (the finding above); with this seed one flip gets partially
        # frozen, leaving a small but nonzero residual.
        injector = StateBitFlipInjector([100, 150], seed=7, max_bit=51)
        error, _ = run_with_fault(
            "push_cancel_flow_robust", IidMessageLoss(0.0, seed=0), rounds=700,
            observers=[injector],
        )
        assert error < 1e-6

    def test_incremental_variants_keep_offset(self):
        # PF-incremental and PCF-efficient bake stored-flow corruption into
        # their running flow sums; with flips injected mid-run the final
        # error stays far above the healthy floor.
        errors = {}
        for algorithm in ("push_flow_incremental", "push_cancel_flow"):
            injector = StateBitFlipInjector([100, 150], seed=8, max_bit=52)
            error, _ = run_with_fault(
                algorithm, IidMessageLoss(0.0, seed=0), rounds=700,
                observers=[injector],
            )
            errors[algorithm] = error
        # At least one of the two incremental-bookkeeping algorithms must
        # show the permanent offset (flip magnitudes are random; a flip on
        # an already-tiny flow may be harmless).
        assert max(errors.values()) > 1e-12, errors
