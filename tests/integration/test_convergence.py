"""Integration: all algorithms converge to the exact aggregate on all
topology families (the paper's baseline correctness expectation)."""

import numpy as np
import pytest

from repro import AggregateKind, run_reduction
from repro.topology import (
    binary_tree,
    bus,
    complete,
    erdos_renyi,
    grid2d,
    hypercube,
    random_regular,
    ring,
    star,
    torus3d,
)

ALGORITHMS = [
    "push_sum",
    "push_flow",
    "push_flow_incremental",
    "push_cancel_flow",
    "push_cancel_flow_robust",
]

TOPOLOGIES = [
    bus(12),
    ring(12),
    complete(12),
    star(12),
    binary_tree(12),
    hypercube(4),
    torus3d(2),
    grid2d(4, 4),
    erdos_renyi(16, 0.4, seed=0),
    random_regular(12, 4, seed=0),
]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
def test_average_converges(algorithm, topo):
    data = np.random.default_rng(42).uniform(1.0, 2.0, size=topo.n)
    result = run_reduction(
        topo,
        data,
        kind=AggregateKind.AVERAGE,
        algorithm=algorithm,
        epsilon=1e-12,
        schedule_seed=7,
        max_rounds=6000,
        backend="object",
    )
    assert result.converged, (
        f"{algorithm} on {topo.name}: error {result.max_error:.3e} "
        f"after {result.rounds} rounds"
    )


@pytest.mark.parametrize("algorithm", ["push_sum", "push_flow", "push_cancel_flow"])
@pytest.mark.parametrize(
    "kind", [AggregateKind.SUM, AggregateKind.COUNT], ids=lambda k: k.value
)
def test_other_aggregates_converge(algorithm, kind):
    topo = hypercube(4)
    data = np.random.default_rng(1).uniform(0.5, 1.5, size=topo.n)
    result = run_reduction(
        topo,
        data,
        kind=kind,
        algorithm=algorithm,
        epsilon=1e-11,
        schedule_seed=3,
        max_rounds=4000,
        backend="object",
    )
    assert result.converged
    if kind is AggregateKind.COUNT:
        assert result.truth == topo.n


def test_weighted_average():
    topo = hypercube(3)
    data = [float(i) for i in range(topo.n)]
    from repro.algorithms.aggregates import initial_mass_pairs, true_aggregate
    from repro.algorithms.registry import instantiate
    from repro.metrics.errors import max_local_error
    from repro.simulation.engine import SynchronousEngine
    from repro.simulation.schedule import UniformGossipSchedule

    weights = [1.0, 2.0, 0.0, 1.0, 1.0, 3.0, 1.0, 1.0]
    initial = initial_mass_pairs(
        AggregateKind.WEIGHTED_AVERAGE, data, custom_weights=weights
    )
    truth = true_aggregate(
        AggregateKind.WEIGHTED_AVERAGE, data, custom_weights=weights
    )
    algs = instantiate("push_cancel_flow", topo, initial)
    engine = SynchronousEngine(topo, algs, UniformGossipSchedule(topo.n, 0))
    engine.run(500)
    assert max_local_error(engine.estimates(), truth) < 1e-12


def test_convergence_rounds_scale_logarithmically():
    """The O(log n) scaling claim: rounds-to-accuracy per log2(n) is flat."""
    rounds_per_log = []
    for dim in (3, 5, 7):
        topo = hypercube(dim)
        data = np.random.default_rng(0).uniform(size=topo.n)
        result = run_reduction(
            topo,
            data,
            algorithm="push_cancel_flow",
            epsilon=1e-10,
            backend="vector",
            schedule_seed=1,
        )
        assert result.converged
        rounds_per_log.append(result.rounds / dim)
    # Flat within a factor ~2.5 across an 8x..128x size range.
    assert max(rounds_per_log) / min(rounds_per_log) < 2.5


def test_single_node_network():
    from repro.topology.base import Topology

    topo = Topology(1, [])
    result = run_reduction(
        topo, [5.0], algorithm="push_sum", backend="object", max_rounds=5
    )
    assert result.truth == 5.0
    assert result.max_error == 0.0
