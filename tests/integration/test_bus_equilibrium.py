"""Integration: the Fig. 2 analytic equilibrium, exactly.

The paper's bus case study (Sec. II-B): with ``v_1 = n + 1`` and all other
values 1, the average is 2 for every n. The paper presents the equilibrium
flows ``f_{i,i+1} = n - i`` for the weight-omitted simplification ("we omit
the weights ... and assume them to be constantly one"). With weights
simulated, PF's fixed points form a family — every node's estimate pair is
``(2c_i, c_i)`` for execution-dependent ``c_i`` — but the *weight-adjusted*
flow

    g_i  :=  f_{i,i+1}.value - 2 * f_{i,i+1}.weight  =  n - 1 - i   (0-based)

is invariant across the whole family (telescoping the per-node mass
balance along the path), reducing to the paper's flows for c_i = 1. Any
converged PF run must satisfy it exactly up to rounding — a sharp
quantitative check of the Fig. 2 analysis.
"""

import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.algorithms.registry import instantiate
from repro.experiments.workloads import bus_case_study_data, bus_equilibrium_flows
from repro.metrics.errors import max_local_error
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import RoundRobinSchedule, UniformGossipSchedule
from repro.topology import bus


def run_pf_on_bus(n, schedule, rounds):
    topo = bus(n)
    data = bus_case_study_data(n)
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    algs = instantiate("push_flow", topo, initial)
    engine = SynchronousEngine(topo, algs, schedule)
    engine.run(rounds)
    return topo, algs, engine


@pytest.mark.parametrize("schedule_kind", ["round_robin", "uniform"])
def test_pf_reaches_analytic_equilibrium(schedule_kind):
    n = 8
    schedule = (
        RoundRobinSchedule(n)
        if schedule_kind == "round_robin"
        else UniformGossipSchedule(n, seed=3)
    )
    topo, algs, engine = run_pf_on_bus(n, schedule, rounds=4000)

    # Estimates converged to the engineered average 2.
    assert max_local_error(engine.estimates(), 2.0) < 1e-9

    # The weight-adjusted flows match the analytic tree flow exactly:
    # g_i = n - 1 - i, which equals the paper's 1-based f_{i,i+1} = n - i.
    expected = bus_equilibrium_flows(n)  # [n-1, n-2, ..., 1]
    for i in range(n - 1):
        flow = algs[i].local_flows()[i + 1]
        g = flow.value - 2.0 * flow.weight
        assert g == pytest.approx(expected[i], abs=1e-8)
        # Flow conservation: the reverse flow negates it.
        reverse = algs[i + 1].local_flows()[i]
        g_rev = reverse.value - 2.0 * reverse.weight
        assert g_rev == pytest.approx(-expected[i], abs=1e-8)


def test_equilibrium_flow_grows_linearly_with_n():
    magnitudes = {}
    for n in (6, 12):
        topo, algs, engine = run_pf_on_bus(
            n, UniformGossipSchedule(n, seed=5), rounds=1500 * n
        )
        assert max_local_error(engine.estimates(), 2.0) < 1e-8
        # The weight-adjusted flow at the first edge is exactly n - 1.
        flow = algs[0].local_flows()[1]
        magnitudes[n] = flow.value - 2.0 * flow.weight
        assert magnitudes[n] == pytest.approx(n - 1, abs=1e-7)
    assert magnitudes[12] > 1.8 * magnitudes[6]
