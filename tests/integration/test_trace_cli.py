"""End-to-end tests for the ``trace`` CLI: run, diff, query, validate.

A small PF-vs-PCF pair on the same seed/topology exercises the whole
pipeline the CI smoke job runs at larger scale: traced run with a link
failure, Chrome export + strict validation, flight-recorder dump, alert
export, cross-algorithm diff, and provenance query.
"""

import json

import pytest

from repro.tracing.chrome import validate_chrome_trace
from repro.tracing.cli import (
    _parse_fault,
    diff_traces,
    main,
    query_provenance,
    run_traced_cell,
)


@pytest.fixture(scope="module")
def traced_pair(tmp_path_factory):
    """PF and PCF traced on the identical cell (link failure at round 30)."""
    base = tmp_path_factory.mktemp("traces")
    summaries = {}
    for alg in ("push_flow", "push_cancel_flow"):
        summaries[alg] = run_traced_cell(
            algorithm=alg,
            topology_family="hypercube",
            n=16,
            rounds=60,
            seed=0,
            fault={"kind": "link_failure", "round": 30},
            out_dir=base / alg,
        )
    return base, summaries


class TestTracedRun:
    def test_artifacts_exported(self, traced_pair):
        base, summaries = traced_pair
        for alg in summaries:
            for name in ("events.jsonl", "chrome_trace.json", "alerts.json",
                         "summary.json"):
                assert (base / alg / name).is_file()

    def test_chrome_trace_validates(self, traced_pair):
        base, _ = traced_pair
        for alg in ("push_flow", "push_cancel_flow"):
            counts = validate_chrome_trace(base / alg / "chrome_trace.json")
            assert counts["X"] > 0  # send/deliver slices
            assert counts["f"] <= counts["s"]  # strict flow pairing

    def test_flight_recorder_captured_the_link_failure(self, traced_pair):
        base, summaries = traced_pair
        for alg, summary in summaries.items():
            dump = base / alg / "flight_link_failure_r30.json"
            assert dump.is_file()
            assert summary["flight_dumps"] == [str(dump)]
            payload = json.loads(dump.read_text())
            assert payload["reason"] == "link_failure"

    def test_summary_reflects_the_run(self, traced_pair):
        _, summaries = traced_pair
        for alg, summary in summaries.items():
            assert summary["rounds"] == 60
            assert summary["events"] > 0
            assert summary["fault"] == "link(0,1)@30"
            assert summary["topology"] == "hypercube(n=16)"


class TestDiff:
    def test_reports_counts_alerts_and_divergence(self, traced_pair):
        base, _ = traced_pair
        report = diff_traces(base / "push_flow", base / "push_cancel_flow")
        assert report["compared_rounds"] > 0
        assert report["a"]["counts"]["send"] > 0
        assert report["b"]["counts"]["send"] > 0
        # PF and PCF are estimate-equivalent until the failure is handled
        # (round 30); after it PF restarts and the traces diverge.
        divergence = report["first_divergence"]
        assert divergence is not None
        assert divergence["round"] >= 30

    def test_identical_traces_do_not_diverge(self, traced_pair):
        base, _ = traced_pair
        report = diff_traces(base / "push_flow", base / "push_flow")
        assert report["first_divergence"] is None


class TestQuery:
    def test_provenance_chain_newest_first(self, traced_pair):
        base, _ = traced_pair
        chain = query_provenance(base / "push_flow", 0, limit=20)
        assert 0 < len(chain) <= 20
        eids = [event["eid"] for event in chain]
        assert eids == sorted(eids, reverse=True)
        kinds = {event["kind"] for event in chain}
        assert "deliver" in kinds or "send" in kinds

    def test_unknown_node_yields_empty_chain(self, traced_pair):
        base, _ = traced_pair
        assert query_provenance(base / "push_flow", 99) == []


class TestCliEntrypoints:
    def test_validate_subcommand(self, traced_pair, capsys):
        base, _ = traced_pair
        path = str(base / "push_flow" / "chrome_trace.json")
        assert main(["validate", path]) == 0
        assert capsys.readouterr().out.startswith("OK:")

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["validate", str(bad)]) == 1
        assert capsys.readouterr().out.startswith("INVALID:")

    def test_query_subcommand(self, traced_pair, capsys):
        base, _ = traced_pair
        code = main(["query", str(base / "push_flow"), "--node", "0",
                     "--limit", "5"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert 0 < len(lines) <= 5
        assert all(json.loads(line)["kind"] for line in lines)

    def test_diff_subcommand(self, traced_pair, capsys):
        base, _ = traced_pair
        code = main([
            "diff", str(base / "push_flow"), str(base / "push_cancel_flow")
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["first_divergence"] is not None

    def test_experiments_cli_dispatches_trace(self, traced_pair, capsys):
        from repro.experiments.cli import main as experiments_main

        base, _ = traced_pair
        path = str(base / "push_flow" / "chrome_trace.json")
        assert experiments_main(["trace", "validate", path]) == 0


class TestFaultShorthand:
    def test_shorthand_forms(self):
        assert _parse_fault("none") == {"kind": "none"}
        assert _parse_fault("link_failure@75") == {
            "kind": "link_failure", "round": 75,
        }
        assert _parse_fault("node_failure@30") == {
            "kind": "node_failure", "round": 30,
        }
        assert _parse_fault("message_loss@0.05") == {
            "kind": "message_loss", "rate": 0.05,
        }

    def test_json_passthrough(self):
        spec = _parse_fault('{"kind": "burst_loss", "rate": 0.2}')
        assert spec == {"kind": "burst_loss", "rate": 0.2}

    def test_bad_shorthand_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            _parse_fault("link_failure")
        with pytest.raises(ConfigurationError):
            _parse_fault("volcano@3")
