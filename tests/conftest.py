"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.algorithms.registry import instantiate
from repro.metrics.errors import max_local_error
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import UniformGossipSchedule
from repro.topology import hypercube, ring


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_hypercube():
    return hypercube(4)  # 16 nodes


@pytest.fixture
def small_ring():
    return ring(8)


def build_engine(
    topology,
    algorithm: str,
    data,
    *,
    kind=AggregateKind.AVERAGE,
    schedule_seed: int = 0,
    **engine_kwargs,
):
    """Engine + algorithm instances for a reduction over `topology`."""
    initial = initial_mass_pairs(kind, list(data))
    algs = instantiate(algorithm, topology, initial)
    engine = SynchronousEngine(
        topology,
        algs,
        UniformGossipSchedule(topology.n, schedule_seed),
        **engine_kwargs,
    )
    return engine, algs


def exact_average(data) -> float:
    return math.fsum(float(x) for x in data) / len(data)


def run_to_rounds(engine, rounds: int) -> None:
    engine.run(rounds)


def engine_max_error(engine, truth) -> float:
    return max_local_error(engine.estimates(), truth)
