#!/usr/bin/env python
"""Scenario: solving a linear system without any central coordinator.

A symmetric positive definite system ``A x = b`` is column-distributed over
a gossip network; conjugate gradients runs with every matvec and dot
product computed as a fault-tolerant reduction. Swapping the reduction
algorithm swaps the solver's fault-tolerance properties — the paper's
"build the fault tolerance into the lowest level" thesis, one layer above
the QR case study.

Run:  python examples/distributed_solver.py
"""

import numpy as np

from repro.linalg import ReductionService, distributed_cg, distributed_jacobi
from repro.topology import hypercube


def main() -> None:
    rng = np.random.default_rng(11)
    dim = 32
    m = rng.standard_normal((dim, dim))
    a = m @ m.T + dim * np.eye(dim)  # SPD, well conditioned
    b = rng.standard_normal(dim)
    x_ref = np.linalg.solve(a, b)

    topo = hypercube(4)  # 16 nodes, 2 matrix columns each
    print(
        f"solving a {dim}x{dim} SPD system, columns distributed over "
        f"{topo.name} ({topo.n} nodes)\n"
    )

    print(f"{'method':<24}{'iters':>6}{'residual':>12}{'|x-x_ref|':>12}"
          f"{'reductions':>12}{'gossip rounds':>15}")
    for algorithm in ("push_cancel_flow", "push_flow", "push_sum"):
        service = ReductionService(topo, algorithm=algorithm, seed=4)
        result = distributed_cg(a, b, service, tolerance=1e-10)
        err = float(np.max(np.abs(result.x - x_ref)))
        print(
            f"{'CG / ' + algorithm:<24}{result.iterations:>6}"
            f"{result.residual:>12.3e}{err:>12.3e}"
            f"{service.stats.calls:>12}{service.stats.total_rounds:>15}"
        )

    # Jacobi on a diagonally dominant system, for contrast.
    dd = m * 0.05 + np.diag(np.abs(m).sum(axis=1) * 0.1 + 1.0)
    bd = rng.standard_normal(dim)
    service = ReductionService(topo, algorithm="push_cancel_flow", seed=5)
    result = distributed_jacobi(dd, bd, service, iterations=400)
    err = float(np.max(np.abs(result.x - np.linalg.solve(dd, bd))))
    print(
        f"{'Jacobi / push_cancel_flow':<24}{result.iterations:>6}"
        f"{result.residual:>12.3e}{err:>12.3e}"
        f"{service.stats.calls:>12}{service.stats.total_rounds:>15}"
    )
    print(
        "\nEvery scalar the solver shares — step sizes, residual norms, "
        "matvec entries —\nwent through a gossip reduction; no node ever "
        "held the full matrix or vector."
    )


if __name__ == "__main__":
    main()
