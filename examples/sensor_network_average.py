#!/usr/bin/env python
"""Scenario: temperature averaging in an unreliable sensor network.

A 2-D sensor grid computes the mean of its readings by gossip while the
network misbehaves underneath it: messages are lost in bursts, bits flip in
flight, and mid-computation one radio link dies for good. The example
tracks the live max/median error round by round and annotates the failure
event — a miniature of the paper's Figs. 4/7 methodology on a realistic
workload.

Run:  python examples/sensor_network_average.py
"""

import numpy as np

from repro.algorithms import AggregateKind, initial_mass_pairs, true_aggregate
from repro.algorithms.registry import instantiate
from repro.faults import (
    BitFlipFault,
    BurstMessageLoss,
    CompositeFault,
    FaultPlan,
    LinkFailure,
    WindowedFault,
)
from repro.metrics import ErrorHistory, fallback_report
from repro.simulation import SynchronousEngine, UniformGossipSchedule
from repro.topology import grid2d


def main() -> None:
    rows = cols = 8
    topo = grid2d(rows, cols)
    rng = np.random.default_rng(42)
    # Synthetic temperature field: a warm gradient plus sensor noise.
    x, y = np.meshgrid(np.arange(cols), np.arange(rows))
    readings = 18.0 + 0.25 * x.ravel() + 0.1 * y.ravel() + rng.normal(0, 0.3, topo.n)
    truth = true_aggregate(AggregateKind.AVERAGE, list(readings))
    print(f"{topo.n} sensors on an {rows}x{cols} grid; true mean {truth:.6f} C\n")

    # The channel: bursty loss everywhere, plus a bit-flip episode.
    channel = CompositeFault(
        [
            BurstMessageLoss(0.03, 0.25, seed=3),
            WindowedFault(
                BitFlipFault(0.01, seed=4, max_bit=51),
                start_round=40,
                end_round=120,
            ),
        ]
    )
    # One radio link dies for good at round 150.
    failed_edge = (27, 28)
    plan = FaultPlan(link_failures=[LinkFailure(round=150, u=27, v=28)])

    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(readings))
    algorithms = instantiate("push_cancel_flow", topo, initial)
    history = ErrorHistory(truth)
    engine = SynchronousEngine(
        topo,
        algorithms,
        UniformGossipSchedule(topo.n, seed=5),
        message_fault=channel,
        fault_plan=plan,
        observers=[history],
    )
    total_rounds = 1200
    engine.run(total_rounds)

    print("round   max error    median error   notes")
    for t in range(0, total_rounds, 100):
        note = ""
        if t == 100:
            note = "<- bit-flip episode (rounds 40..120)"
        if t == 200:
            note = f"<- link {failed_edge} failed at 150, excluded"
        print(
            f"{t:5d}   {history.max_errors[t]:.3e}    "
            f"{history.median_errors[t]:.3e}   {note}"
        )
    print(
        f"{total_rounds - 1:5d}   {history.max_errors[-1]:.3e}    "
        f"{history.median_errors[-1]:.3e}"
    )

    report = fallback_report(history.max_errors, 150)
    print(
        f"\nlink-failure impact: error {report.error_before:.2e} -> "
        f"{report.error_after:.2e} (jump x{report.jump_factor:.1f}), "
        f"recovered in {report.recovery_rounds} rounds"
    )
    estimates = engine.estimates()
    offset = abs(np.mean(estimates) - truth)
    print(f"final consensus: {np.mean(estimates):.6f} C  (truth {truth:.6f} C)")
    print(f"node spread:     {max(estimates) - min(estimates):.3e}")
    print(
        f"consensus bias:  {offset:.2e} C — the bounded residue of the "
        "fault history\n(bit flips frozen by cancellations + in-flight mass "
        "lost at link exclusion);\nthe sensors agree to 13 digits on a value "
        "a few micro-degrees off the exact mean."
    )


if __name__ == "__main__":
    main()
