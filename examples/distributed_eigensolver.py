#!/usr/bin/env python
"""Scenario: a distributed eigensolver on top of gossip reductions.

The paper points to distributed eigensolvers (its ref [9]) as the next
layer above fault-tolerant reductions. This example runs the library's
power-iteration eigensolver: the matrix is column-distributed, every matvec
and normalization is a gossip reduction, and the reduction algorithm is a
plug-in — so the eigensolver inherits PCF's fault tolerance for free.

Run:  python examples/distributed_eigensolver.py
"""

import numpy as np

from repro.linalg import ReductionService, distributed_power_iteration
from repro.topology import hypercube


def main() -> None:
    dim = 32
    rng = np.random.default_rng(3)
    # A symmetric matrix with a controlled spectrum.
    basis, _ = np.linalg.qr(rng.standard_normal((dim, dim)))
    spectrum = np.concatenate(([8.0, 3.0], rng.uniform(0.1, 1.0, dim - 2)))
    matrix = basis @ np.diag(spectrum) @ basis.T

    topo = hypercube(4)  # 16 nodes, 2 columns each
    print(
        f"dominant eigenpair of a {dim}x{dim} symmetric matrix, columns "
        f"distributed over {topo.name}\n"
    )

    reference = float(np.max(np.abs(np.linalg.eigvalsh(matrix))))
    print(f"reference |lambda_max| (numpy): {reference:.12f}\n")

    for algorithm in ("push_cancel_flow", "push_flow"):
        service = ReductionService(topo, algorithm=algorithm, seed=1)
        result = distributed_power_iteration(
            matrix, service, iterations=80, tolerance=1e-12, seed=2
        )
        print(f"--- {algorithm} ---")
        print(f"  eigenvalue estimate : {result.eigenvalue:.12f}")
        print(f"  |error| vs numpy    : {abs(result.eigenvalue - reference):.3e}")
        print(f"  residual ||Ax-lx||  : {result.residual:.3e}")
        print(f"  node disagreement   : {result.eigenvalue_spread:.3e}")
        print(f"  iterations          : {result.iterations}")
        print(f"  gossip reductions   : {service.stats.calls}")
        print()


if __name__ == "__main__":
    main()
