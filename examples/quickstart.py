#!/usr/bin/env python
"""Quickstart: one fault-tolerant distributed reduction.

Averages random per-node values over a 64-node hypercube with the paper's
push-cancel-flow (PCF) algorithm, then re-runs the same computation with a
30% message-loss channel to show that the result is unaffected — the
paper's core promise in ~20 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AggregateKind, run_reduction, topology
from repro.faults import IidMessageLoss


def main() -> None:
    topo = topology.hypercube(6)  # 64 nodes, each talking to 6 neighbors
    data = np.random.default_rng(7).uniform(size=topo.n)

    print(f"network: {topo.name} with n={topo.n} nodes")
    print(f"true average: {np.mean(data):.17g}\n")

    # Failure-free run.
    result = run_reduction(
        topo,
        data,
        kind=AggregateKind.AVERAGE,
        algorithm="push_cancel_flow",
        epsilon=1e-15,
    )
    print("failure-free PCF reduction")
    print(f"  rounds:          {result.rounds}")
    print(f"  messages:        {result.messages_sent}")
    print(f"  max local error: {result.max_error:.3e}")
    print(f"  node 0 estimate: {result.estimate_of(0):.17g}\n")

    # Same computation over a channel that silently drops 30% of messages.
    lossy = run_reduction(
        topo,
        data,
        kind=AggregateKind.AVERAGE,
        algorithm="push_cancel_flow",
        epsilon=1e-12,
        message_fault=IidMessageLoss(0.3, seed=1),
        max_rounds=2000,
    )
    print("PCF reduction with 30% message loss (self-healing, no retries)")
    print(f"  rounds:          {lossy.rounds}")
    delivered = lossy.messages_delivered / max(lossy.messages_sent, 1)
    print(f"  delivery rate:   {delivered:.1%}")
    print(f"  max local error: {lossy.max_error:.3e}")

    # Contrast: push-sum (no fault tolerance) under the same channel.
    fragile = run_reduction(
        topo,
        data,
        algorithm="push_sum",
        epsilon=1e-12,
        message_fault=IidMessageLoss(0.3, seed=1),
        max_rounds=2000,
    )
    print("\npush-sum under the same loss (mass leaks, result is wrong)")
    print(f"  max local error: {fragile.max_error:.3e}")


if __name__ == "__main__":
    main()
