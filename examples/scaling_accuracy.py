#!/usr/bin/env python
"""Scenario: how far can you trust a gossip reduction as the system grows?

Sweeps network sizes on hypercube and 3-D torus topologies and measures the
best accuracy each algorithm can actually reach (the paper's Figs. 3/6).
Push-flow's achievable accuracy visibly decays with scale; push-cancel-flow
stays pinned near machine precision. Uses the vectorized engines, so a few
thousand nodes run in seconds.

Run:  python examples/scaling_accuracy.py [--big]
"""

import sys

import numpy as np

from repro import AggregateKind, run_reduction
from repro.topology import hypercube, torus3d


def sweep(topologies, algorithms):
    print(f"{'topology':<14}{'n':>7}", end="")
    for algorithm in algorithms:
        print(f"{algorithm:>20}", end="")
    print()
    for topo in topologies:
        data = np.random.default_rng(0).uniform(size=topo.n)
        print(f"{topo.name:<14}{topo.n:>7}", end="")
        for algorithm in algorithms:
            result = run_reduction(
                topo,
                data,
                kind=AggregateKind.AVERAGE,
                algorithm=algorithm,
                epsilon=1e-15,
                backend="vector",
                stall_rounds=150,
            )
            print(f"{result.best_error:>20.3e}", end="", flush=True)
        print()


def main() -> None:
    big = "--big" in sys.argv
    hyper_dims = (3, 6, 9, 12) if big else (3, 6, 9)
    torus_sides = (2, 4, 8, 16) if big else (2, 4, 8)
    algorithms = ("push_sum", "push_flow", "push_cancel_flow")

    print("Best achievable max local relative error (target 1e-15)\n")
    sweep([hypercube(d) for d in hyper_dims], algorithms)
    print()
    sweep([torus3d(s) for s in torus_sides], algorithms)
    print(
        "\nReading: push_flow loses roughly an order of magnitude per size "
        "step\n(the Fig. 3 decay); push_cancel_flow tracks push_sum near "
        "machine precision\n(Fig. 6) while being the only one of the two "
        "that also survives failures."
    )


if __name__ == "__main__":
    main()
