#!/usr/bin/env python
"""Scenario: fully distributed QR factorization (the paper's Sec. IV).

A matrix is distributed one row block per node over a hypercube; every norm
and dot product of modified Gram-Schmidt runs as a gossip reduction. The
example factorizes with dmGS(PF) and dmGS(PCF) and shows how the reduction
algorithm's accuracy surfaces in the factorization error — the Fig. 8
comparison, plus validation against NumPy's QR.

Run:  python examples/distributed_qr.py
"""

import numpy as np

from repro.experiments.workloads import random_matrix
from repro.linalg import distributed_qr, local_mgs
from repro.topology import hypercube


def main() -> None:
    topo = hypercube(5)  # 32 nodes
    m = 12
    v = random_matrix(topo.n, m, seed=0)
    print(f"factorizing V in R^({topo.n}x{m}) over {topo.name} ({topo.n} nodes)\n")

    print(f"{'reduction':<20}{'||V-QR||/||V||':>16}{'||I-QtQ||':>12}"
          f"{'R spread':>12}{'rounds':>9}{'capped':>8}")
    for algorithm in ("exact", "push_sum", "push_flow", "push_cancel_flow"):
        result = distributed_qr(v, topo, algorithm=algorithm, seed=3)
        print(
            f"{algorithm:<20}"
            f"{result.factorization_error:>16.3e}"
            f"{result.orthogonality_error:>12.3e}"
            f"{result.r_consistency:>12.3e}"
            f"{result.result.total_rounds:>9d}"
            f"{result.result.failed_reductions:>8d}"
        )

    # Validate the distributed result against the textbook factorization.
    pcf = distributed_qr(v, topo, algorithm="push_cancel_flow", seed=3)
    q_ref, r_ref = local_mgs(v)
    q_err = np.abs(pcf.q.gather() - q_ref).max()
    r_err = np.abs(pcf.r_blocks[0] - r_ref).max()
    print("\nvalidation against local modified Gram-Schmidt:")
    print(f"  max |Q_dist - Q_ref| = {q_err:.3e}")
    print(f"  max |R_dist - R_ref| = {r_err:.3e}")

    # Communication trade-off: fused mode batches each step's norm and dot
    # products into a single reduction.
    fused = distributed_qr(
        v, topo, algorithm="push_cancel_flow", seed=3, mode="fused"
    )
    print("\ncommunication modes (PCF):")
    print(
        f"  two_phase: {pcf.result.reductions} reductions, "
        f"{pcf.result.total_rounds} gossip rounds, "
        f"error {pcf.factorization_error:.3e}"
    )
    print(
        f"  fused:     {fused.result.reductions} reductions, "
        f"{fused.result.total_rounds} gossip rounds, "
        f"error {fused.factorization_error:.3e}"
    )


if __name__ == "__main__":
    main()
