#!/usr/bin/env python
"""Scenario: what a permanent link failure costs, per algorithm.

Reproduces the paper's central demonstration (Figs. 4 vs 7) interactively:
the same 6-D hypercube reduction, the same communication schedule, the same
link dying at round 75 — once under push-flow, once under push-cancel-flow.
PF is thrown back to the start; PCF barely notices.

Run:  python examples/failure_recovery_comparison.py
"""

from repro.experiments.figures import failure_experiment


def sparkline(values, lo=-16.0, hi=1.0):
    """Render a log-error series as a rough ASCII level strip."""
    import math

    glyphs = " .:-=+*#%@"
    chars = []
    for v in values:
        level = math.log10(max(v, 1e-16))
        frac = (level - lo) / (hi - lo)
        chars.append(glyphs[min(len(glyphs) - 1, max(0, int(frac * len(glyphs))))])
    return "".join(chars)


def main() -> None:
    fail_round = 75
    print(
        "6-D hypercube (64 nodes), averaging; a link fails permanently and\n"
        f"is handled at round {fail_round}. Identical schedules for both runs.\n"
    )
    results = {}
    for algorithm in ("push_flow", "push_cancel_flow"):
        history, report = failure_experiment(
            algorithm, fail_round=fail_round, total_rounds=200
        )
        results[algorithm] = (history, report)

    for algorithm, (history, report) in results.items():
        print(f"--- {algorithm} ---")
        print(f"max-error level per round (log scale, '@'=1e0 ... ' '=1e-16):")
        line = sparkline(history.max_errors[::2])
        marker = " " * (fail_round // 2) + "^ failure handled"
        print(f"  {line}")
        print(f"  {marker}")
        print(f"  error before failure : {report.error_before:.3e}")
        print(f"  error after handling : {report.error_after:.3e}")
        print(f"  jump factor          : {report.jump_factor:.1f}x")
        print(f"  convergence undone   : {report.restart_fraction:.0%}")
        recovery = (
            f"{report.recovery_rounds} rounds"
            if report.recovery_rounds is not None
            else "not within the run"
        )
        print(f"  recovery time        : {recovery}")
        print(f"  final error (r=200)  : {history.final_max_error():.3e}\n")


if __name__ == "__main__":
    main()
